package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// tinyDataset is a fast-to-train synthetic task for unit tests.
func tinyDataset() *data.Synth {
	return data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 256, TestSize: 128,
		C: 3, H: 8, W: 8, Noise: 0.25, MaxShift: 1, Flip: false, Seed: 7,
	})
}

func mlpFactory(width int) func(uint64) *nn.Network {
	return func(seed uint64) *nn.Network {
		return models.NewMLP(models.MicroConfig{Classes: 4, InC: 3, InH: 8, InW: 8, Width: width, Seed: seed})
	}
}

func TestTrainBaselineLearns(t *testing.T) {
	ds := tinyDataset()
	res, err := Train(Config{
		Model: mlpFactory(4), Batch: 32, Epochs: 8, Method: BaselineSGD,
		BaseLR: 0.1, Seed: 1,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("baseline diverged")
	}
	if res.TestAcc < 0.8 {
		t.Fatalf("baseline accuracy %v, want >= 0.8", res.TestAcc)
	}
	if len(res.History) != 8 {
		t.Fatalf("history has %d epochs, want 8", len(res.History))
	}
	if res.Iterations != 8*(256/32) {
		t.Fatalf("iterations = %d, want 64", res.Iterations)
	}
}

func TestTrainDeterministic(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{Model: mlpFactory(4), Batch: 64, Epochs: 3, Method: LARSWarmup,
		BaseLR: 0.1, WarmupEpochs: 1, Trust: 0.05, Seed: 9}
	a, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalLoss != b.FinalLoss || a.TestAcc != b.TestAcc {
		t.Fatalf("non-deterministic: (%v,%v) vs (%v,%v)", a.FinalLoss, a.TestAcc, b.FinalLoss, b.TestAcc)
	}
}

func TestTrainMultiWorkerCloseToSingle(t *testing.T) {
	ds := tinyDataset()
	mk := func(workers int) *Result {
		res, err := Train(Config{
			Model: mlpFactory(4), Workers: workers, Algo: dist.Ring,
			Batch: 64, Epochs: 4, Method: BaselineSGD, BaseLR: 0.1, Seed: 3,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, four := mk(1), mk(4)
	if math.Abs(one.FinalLoss-four.FinalLoss) > 1e-3*(1+one.FinalLoss) {
		t.Fatalf("P=4 loss %v differs from P=1 loss %v", four.FinalLoss, one.FinalLoss)
	}
}

// TestMultiWorkerBitIdenticalToSingle is the engine's headline guarantee at
// the trainer level: with the logical shard split pinned, a 4-worker run
// reproduces the single-worker loss trajectory bit-identically — physical
// parallelism is invisible to the numerics.
func TestMultiWorkerBitIdenticalToSingle(t *testing.T) {
	ds := tinyDataset()
	run := func(workers int) *Result {
		res, err := Train(Config{
			Model: mlpFactory(4), Workers: workers, Shards: 4, Algo: dist.Tree,
			Batch: 64, Epochs: 3, Method: LARSWarmup,
			BaseLR: 0.1, WarmupEpochs: 1, Trust: 0.05, Seed: 9,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, four := run(1), run(4)
	if len(one.History) != len(four.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(one.History), len(four.History))
	}
	for e := range one.History {
		a, b := one.History[e], four.History[e]
		if a.TrainLoss != b.TrainLoss {
			t.Fatalf("epoch %d: P=4 loss %v differs bitwise from P=1 loss %v", e, b.TrainLoss, a.TrainLoss)
		}
		if a.TestAcc != b.TestAcc && !(math.IsNaN(a.TestAcc) && math.IsNaN(b.TestAcc)) {
			t.Fatalf("epoch %d: P=4 acc %v differs from P=1 acc %v", e, b.TestAcc, a.TestAcc)
		}
	}
	if one.FinalLoss != four.FinalLoss || one.TestAcc != four.TestAcc {
		t.Fatalf("final results differ: (%v,%v) vs (%v,%v)", one.FinalLoss, one.TestAcc, four.FinalLoss, four.TestAcc)
	}
}

// TestFaultyTrainingMatchesClean: dropped and straggling workers must not
// change a single bit of the trajectory — recovery is exact — while the
// recorded stats show the recovery traffic.
func TestFaultyTrainingMatchesClean(t *testing.T) {
	ds := tinyDataset()
	run := func(faults *dist.FaultPlan) *Result {
		res, err := Train(Config{
			Model: mlpFactory(4), Workers: 4, Batch: 64, Epochs: 2,
			Method: BaselineSGD, BaseLR: 0.1, Seed: 3, Faults: faults,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	faulty := run(&dist.FaultPlan{Seed: 5, DropRate: 0.3, StallRate: 0.3})
	if clean.FinalLoss != faulty.FinalLoss || clean.TestAcc != faulty.TestAcc {
		t.Fatalf("faults changed the trajectory: (%v,%v) vs (%v,%v)",
			faulty.FinalLoss, faulty.TestAcc, clean.FinalLoss, clean.TestAcc)
	}
	if faulty.Comm.Retries == 0 {
		t.Fatal("fault plan recorded no retries")
	}
	if faulty.Comm.Messages <= clean.Comm.Messages {
		t.Fatal("recovery should add resent messages")
	}
}

func TestDivergenceDetected(t *testing.T) {
	ds := tinyDataset()
	// An absurd learning rate with no warmup must blow up, be detected,
	// and be reported — not crash (the paper's Table 5 0.001-accuracy rows).
	res, err := Train(Config{
		Model: mlpFactory(4), Batch: 128, Epochs: 6, Method: LinearScalingWarmup,
		BaseLR: 500, BaseBatch: 128, Seed: 2,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged {
		t.Fatalf("expected divergence at lr=500, got acc %v", res.TestAcc)
	}
	if len(res.History) == 0 {
		t.Fatal("divergence must still record history")
	}
	// A milder-but-fatal rate may not hit NaN (dead ReLUs pin the loss at
	// ln(K)); it must still end at chance accuracy — the paper's "0.001"
	// failure mode rather than a crash.
	res2, err := Train(Config{
		Model: mlpFactory(4), Batch: 128, Epochs: 6, Method: LinearScalingWarmup,
		BaseLR: 50, BaseBatch: 128, Seed: 2,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Diverged && res2.TestAcc > 0.4 {
		t.Fatalf("lr=50 should fail to learn, got acc %v", res2.TestAcc)
	}
}

func TestTargetLR(t *testing.T) {
	cfg := Config{Method: LinearScalingWarmup, BaseLR: 0.02, BaseBatch: 512, Batch: 4096}
	if got := cfg.TargetLR(); math.Abs(got-0.16) > 1e-12 {
		t.Fatalf("TargetLR = %v, want 0.16 (Table 5's linear-scaled rate)", got)
	}
	cfg.Method = BaselineSGD
	if got := cfg.TargetLR(); got != 0.02 {
		t.Fatalf("baseline TargetLR = %v, want base", got)
	}
}

func TestTrainWithAugmentation(t *testing.T) {
	ds := tinyDataset()
	res, err := Train(Config{
		Model: mlpFactory(4), Batch: 64, Epochs: 3, Method: LARSWarmup,
		BaseLR: 0.1, Trust: 0.05, WarmupEpochs: 1, Augment: true, Seed: 4,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("augmented run diverged")
	}
}

func TestTrainRecordsCommStats(t *testing.T) {
	ds := tinyDataset()
	res, err := Train(Config{
		Model: mlpFactory(4), Workers: 4, Batch: 64, Epochs: 2,
		Method: BaselineSGD, BaseLR: 0.05, Seed: 5,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Messages == 0 || res.Comm.Bytes == 0 {
		t.Fatal("multi-worker run recorded no communication")
	}
}

func TestBatchLargerThanDatasetErrors(t *testing.T) {
	ds := tinyDataset()
	_, err := Train(Config{Model: mlpFactory(4), Batch: 100000, Epochs: 1}, ds)
	if err == nil {
		t.Fatal("expected error for oversized batch")
	}
}

// TestMicroBatchingMatchesFullBatch: gradient accumulation must produce the
// same optimizer trajectory as the single-pass batch up to float32
// summation order (exact for an MLP, which has no batch statistics).
func TestMicroBatchingMatchesFullBatch(t *testing.T) {
	ds := tinyDataset()
	run := func(micro int) *Result {
		res, err := Train(Config{
			Model: mlpFactory(4), Batch: 64, Epochs: 4, Method: BaselineSGD,
			BaseLR: 0.1, MicroBatch: micro, Seed: 6,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(0)
	chunked := run(16)
	if math.Abs(full.FinalLoss-chunked.FinalLoss) > 1e-4*(1+full.FinalLoss) {
		t.Fatalf("micro-batched loss %v differs from full-batch %v", chunked.FinalLoss, full.FinalLoss)
	}
	if full.TestAcc != chunked.TestAcc {
		t.Fatalf("accuracies differ: %v vs %v", chunked.TestAcc, full.TestAcc)
	}
}

func TestMicroBatchUnevenChunks(t *testing.T) {
	ds := tinyDataset()
	// 64 % 24 != 0: the last chunk is short and must be weighted correctly.
	res, err := Train(Config{
		Model: mlpFactory(4), Batch: 64, Epochs: 2, Method: BaselineSGD,
		BaseLR: 0.1, MicroBatch: 24, Seed: 6,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("uneven micro-batching diverged")
	}
}

// TestLARSHoldsAccuracyAtLargeBatch is the measured core result: at a batch
// size where linear scaling + warmup collapses, LARS + warmup stays near the
// small-batch baseline (the Figure 1 / Figure 4 phenomenon). This is the
// repository's analog of the paper's headline claim, so it runs the real
// tuned configuration (~30s); skipped in -short mode.
func TestLARSHoldsAccuracyAtLargeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full measured comparison (~30s)")
	}
	synCfg := data.DefaultSynthConfig()
	synCfg.TrainSize = 2048
	synCfg.H, synCfg.W = 16, 16
	ds := data.GenerateSynth(synCfg)
	factory := func(seed uint64) *nn.Network {
		return models.NewMicroAlexNet(models.MicroConfig{Classes: 8, InH: 16, Width: 8, Seed: seed})
	}
	common := Config{
		Model: factory, Workers: 2, Batch: 1024, Epochs: 20,
		BaseLR: 0.05, BaseBatch: 32, WarmupEpochs: 5, Seed: 1,
	}
	linear := common
	linear.Method = LinearScalingWarmup
	lars := common
	lars.Method = LARSWarmup
	lars.Trust = 0.05

	lres, err := Train(linear, ds)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := Train(lars, ds)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("B=1024: linear acc=%.3f, LARS acc=%.3f", lres.TestAcc, rres.TestAcc)
	if rres.TestAcc < lres.TestAcc+0.2 {
		t.Errorf("LARS (%.3f) should clearly beat linear scaling (%.3f) at large batch",
			rres.TestAcc, lres.TestAcc)
	}
	if rres.TestAcc < 0.85 {
		t.Errorf("LARS accuracy %.3f should stay near the baseline (~1.0)", rres.TestAcc)
	}
}

// TestHierarchyTrajectoryBitIdenticalToFlat is the PR's acceptance
// criterion at the trainer level: a run over a two-tier Hierarchy topology
// reproduces the flat-topology loss trajectory bit-for-bit (same shard
// split), while Result.TierComm records a two-tier schedule whose aggregate
// equals Result.Comm.
func TestHierarchyTrajectoryBitIdenticalToFlat(t *testing.T) {
	ds := tinyDataset()
	run := func(topology *dist.Hierarchy) *Result {
		res, err := Train(Config{
			Model: mlpFactory(4), Workers: 4, Shards: 4,
			Algo: dist.Ring, Topology: topology,
			Batch: 64, Epochs: 3, Method: LARSWarmup,
			BaseLR: 0.1, WarmupEpochs: 1, Trust: 0.05, Seed: 9,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	h := dist.NewHierarchy(2, 2)
	flat, hier := run(nil), run(&h)
	if len(flat.History) != len(hier.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(flat.History), len(hier.History))
	}
	for e := range flat.History {
		a, b := flat.History[e], hier.History[e]
		if a.TrainLoss != b.TrainLoss {
			t.Fatalf("epoch %d: hierarchical loss %v differs bitwise from flat %v", e, b.TrainLoss, a.TrainLoss)
		}
		if a.TestAcc != b.TestAcc && !(math.IsNaN(a.TestAcc) && math.IsNaN(b.TestAcc)) {
			t.Fatalf("epoch %d: hierarchical acc %v differs from flat %v", e, b.TestAcc, a.TestAcc)
		}
	}
	if flat.FinalLoss != hier.FinalLoss || flat.TestAcc != hier.TestAcc {
		t.Fatalf("final results differ: (%v,%v) vs (%v,%v)", flat.FinalLoss, flat.TestAcc, hier.FinalLoss, hier.TestAcc)
	}
	if flat.TierComm != (dist.TierStats{}) {
		t.Fatalf("flat run recorded tier stats %+v", flat.TierComm)
	}
	if hier.TierComm.Total() != hier.Comm {
		t.Fatalf("tier total %+v != aggregate %+v", hier.TierComm.Total(), hier.Comm)
	}
	if hier.TierComm.Intra.Messages == 0 || hier.TierComm.Inter.Messages == 0 {
		t.Fatalf("both tiers should carry traffic: %+v", hier.TierComm)
	}
}

// TestElasticTrainingSurvivesDeadWorker: a run that loses a worker
// mid-training evicts it, finishes on P−1, and reports the membership
// timeline — bit-identically across topologies under the same fault plan
// and policy (the trainer-level face of dist's determinism contract).
func TestElasticTrainingSurvivesDeadWorker(t *testing.T) {
	ds := tinyDataset()
	hier := dist.NewHierarchy(2, 2)
	run := func(algo dist.Algorithm, topo *dist.Hierarchy) *Result {
		res, err := Train(Config{
			Model: mlpFactory(4), Workers: 4, Algo: algo, Topology: topo,
			Batch: 64, Epochs: 2, Method: BaselineSGD, BaseLR: 0.1, Seed: 3,
			Faults:  &dist.FaultPlan{Seed: 5, Dead: map[int]int64{3: 2}},
			Elastic: &dist.Elastic{EvictAfter: 2},
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(dist.Central, nil)
	if ref.Membership.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", ref.Membership.Evictions)
	}
	if ref.Membership.StepsAtWorld[4] != 4 || ref.Membership.StepsAtWorld[3] != ref.Iterations-4 {
		t.Fatalf("world histogram %v, want 4 steps at P=4 then the rest at P=3 (of %d)",
			ref.Membership.StepsAtWorld, ref.Iterations)
	}
	if ref.Membership.RebalancedShards == 0 || ref.Membership.RebalancedBytes == 0 {
		t.Fatalf("rebalance accounting empty: %+v", ref.Membership)
	}
	for _, v := range []struct {
		name string
		algo dist.Algorithm
		topo *dist.Hierarchy
	}{{"ring", dist.Ring, nil}, {"hier", dist.Tree, &hier}} {
		got := run(v.algo, v.topo)
		if got.FinalLoss != ref.FinalLoss || got.TestAcc != ref.TestAcc {
			t.Fatalf("%s: degraded trajectory differs across topologies: (%v,%v) vs (%v,%v)",
				v.name, got.FinalLoss, got.TestAcc, ref.FinalLoss, ref.TestAcc)
		}
		if got.Membership.Timeline() != ref.Membership.Timeline() {
			t.Fatalf("%s: membership timeline %q vs %q", v.name, got.Membership.Timeline(), ref.Membership.Timeline())
		}
	}
}

// TestElasticTrainerJoinBitIdenticalToClean is the trainer-level face of
// the scale-up contract: with the shard split pinned, a run that loses a
// worker mid-training and readmits it later produces the exact loss/acc
// trajectory of a clean fault-free run — the grow-shrink-grow membership
// history is invisible to the numerics — while Result.Membership reports
// the full eviction+join timeline.
func TestElasticTrainerJoinBitIdenticalToClean(t *testing.T) {
	ds := tinyDataset()
	run := func(faults *dist.FaultPlan, elastic *dist.Elastic) *Result {
		res, err := Train(Config{
			Model: mlpFactory(4), Workers: 4, Shards: 4,
			Batch: 64, Epochs: 2, Method: BaselineSGD, BaseLR: 0.1, Seed: 3,
			Faults: faults, Elastic: elastic,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil, nil)
	// 8 iterations total: dead at 2, evicted closing 3 (EvictAfter 2),
	// readmitted at the step-6 boundary — world 4,4,4,4,3,3,4,4.
	elastic := run(
		&dist.FaultPlan{Seed: 5, Dead: map[int]int64{3: 2}, Join: map[int]int64{3: 6}},
		&dist.Elastic{EvictAfter: 2},
	)
	if len(clean.History) != len(elastic.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(clean.History), len(elastic.History))
	}
	for e := range clean.History {
		a, b := clean.History[e], elastic.History[e]
		if a.TrainLoss != b.TrainLoss {
			t.Fatalf("epoch %d: elastic loss %v differs bitwise from clean loss %v", e, b.TrainLoss, a.TrainLoss)
		}
		if a.TestAcc != b.TestAcc && !(math.IsNaN(a.TestAcc) && math.IsNaN(b.TestAcc)) {
			t.Fatalf("epoch %d: elastic acc %v differs from clean acc %v", e, b.TestAcc, a.TestAcc)
		}
	}
	if clean.FinalLoss != elastic.FinalLoss || clean.TestAcc != elastic.TestAcc {
		t.Fatalf("final results differ: (%v,%v) vs (%v,%v)",
			elastic.FinalLoss, elastic.TestAcc, clean.FinalLoss, clean.TestAcc)
	}
	m := elastic.Membership
	if m.Evictions != 1 || m.Joins != 1 {
		t.Fatalf("evictions=%d joins=%d, want 1 and 1", m.Evictions, m.Joins)
	}
	if m.StepsAtWorld[4] != 6 || m.StepsAtWorld[3] != 2 {
		t.Fatalf("world histogram %v, want 6 steps at P=4 and 2 at P=3", m.StepsAtWorld)
	}
	if got := m.EventTimeline(); got != "-3@4 +3@6" {
		t.Fatalf("event timeline %q, want %q", got, "-3@4 +3@6")
	}
	if m.JoinedShards == 0 || m.JoinedBytes == 0 {
		t.Fatalf("join accounting empty: %+v", m)
	}
}

// TestDeadWorkerWithoutElasticityErrors: with elasticity off, a permanent
// death surfaces the typed worker-dead error instead of silently retrying
// the worker for the rest of the run.
func TestDeadWorkerWithoutElasticityErrors(t *testing.T) {
	ds := tinyDataset()
	_, err := Train(Config{
		Model: mlpFactory(4), Workers: 2, Batch: 64, Epochs: 2,
		Method: BaselineSGD, BaseLR: 0.1, Seed: 3,
		Faults: &dist.FaultPlan{Dead: map[int]int64{1: 1}},
	}, ds)
	var dead *dist.WorkerDeadError
	if !errors.As(err, &dead) {
		t.Fatalf("expected *dist.WorkerDeadError, got %v", err)
	}
	if dead.Worker != 1 {
		t.Fatalf("dead worker %d, want 1", dead.Worker)
	}
}

// TestPairwiseTrainerBitIdenticalAcrossWorkersAndTopology is the
// trainer-level acceptance criterion of the pairwise-f32 policy: with the
// shard split pinned, whole training runs — losses and accuracies, epoch
// by epoch — are bit-identical across worker counts, flat vs hierarchical
// topologies, and overlap on/off.
func TestPairwiseTrainerBitIdenticalAcrossWorkersAndTopology(t *testing.T) {
	ds := tinyDataset()
	hier := dist.NewHierarchy(2, 2)
	run := func(workers int, topology *dist.Hierarchy, bucket int, overlap bool) *Result {
		res, err := Train(Config{
			Model: mlpFactory(4), Workers: workers, Shards: 4,
			Algo: dist.Ring, Topology: topology, Bucket: bucket, Overlap: overlap,
			Reduction: dist.PairwiseF32,
			Batch:     64, Epochs: 3, Method: LARSWarmup,
			BaseLR: 0.1, WarmupEpochs: 1, Trust: 0.05, Seed: 9,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1, nil, 0, false)
	for _, tc := range []struct {
		label string
		res   *Result
	}{
		{"P=2 flat", run(2, nil, 0, false)},
		{"P=4 flat", run(4, nil, 0, false)},
		{"P=4 hierarchical", run(4, &hier, 0, false)},
		{"P=4 overlap", run(4, nil, 33, true)},
	} {
		if len(tc.res.History) != len(ref.History) {
			t.Fatalf("%s: history lengths differ", tc.label)
		}
		for e := range ref.History {
			a, b := ref.History[e], tc.res.History[e]
			if a.TrainLoss != b.TrainLoss {
				t.Fatalf("%s: epoch %d loss %v differs bitwise from reference %v", tc.label, e, b.TrainLoss, a.TrainLoss)
			}
			if !(math.IsNaN(a.TestAcc) && math.IsNaN(b.TestAcc)) && a.TestAcc != b.TestAcc {
				t.Fatalf("%s: epoch %d accuracy differs bitwise", tc.label, e)
			}
		}
	}
	// The two policies really differ: a canonical run from the same seed
	// must not match the pairwise trajectory bit for bit.
	canon, err := Train(Config{
		Model: mlpFactory(4), Workers: 1, Shards: 4, Algo: dist.Ring,
		Batch: 64, Epochs: 3, Method: LARSWarmup,
		BaseLR: 0.1, WarmupEpochs: 1, Trust: 0.05, Seed: 9,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for e := range ref.History {
		if canon.History[e].TrainLoss != ref.History[e].TrainLoss {
			same = false
		}
	}
	if same {
		t.Fatal("canonical and pairwise trajectories agree bitwise — the policy is not reaching the engine")
	}
}

// TestTrainProfileSurfaced: Config.Profile threads through to
// Result.Profile with the sums-to-wall invariant intact.
func TestTrainProfileSurfaced(t *testing.T) {
	ds := tinyDataset()
	res, err := Train(Config{
		Model: mlpFactory(4), Workers: 2, Batch: 64, Epochs: 2,
		Method: BaselineSGD, BaseLR: 0.1, Seed: 4, Profile: true,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.WallNS <= 0 || p.GemmNS <= 0 {
		t.Fatalf("profile not populated: %+v", p)
	}
	if p.Accounted() != p.WallNS {
		t.Fatalf("profile phases sum to %d ns, wall is %d ns", p.Accounted(), p.WallNS)
	}

	// And without the flag the result stays zero.
	res, err = Train(Config{
		Model: mlpFactory(4), Workers: 2, Batch: 64, Epochs: 1,
		Method: BaselineSGD, BaseLR: 0.1, Seed: 4,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != (dist.ProfileStats{}) {
		t.Fatalf("unprofiled run reported profile stats: %+v", res.Profile)
	}
}

// convFactory builds a small conv net so the F16 tests exercise the im2col
// GEMM path, not just the MLP's plain linears. No dropout and no batch norm:
// per-replica RNG streams and running statistics are worker-count-dependent
// and would break bit-identity for any precision.
func convFactory(width int) func(uint64) *nn.Network {
	return func(seed uint64) *nn.Network {
		r := rng.New(seed)
		return nn.NewNetwork("conv-prec",
			nn.NewConv("conv1", r, 3, width, 3, 1, 1, nn.ConvOpts{}),
			nn.NewReLU("relu1"),
			nn.NewMaxPool("pool1", 2, 2, 0),
			nn.NewFlatten(),
			nn.NewLinear("fc", r, width*4*4, 4),
		)
	}
}

// TestF16TrainerBitIdenticalAcrossDecompositions: under Precision F16 the
// trainer keeps the repo's headline guarantee — for a pinned shard split the
// trajectory is bit-identical across worker counts, hierarchy, overlap and
// reduction bucketing — and the negative control shows the F16 trajectory
// really differs from F32 (the precision switch reaches the kernels).
func TestF16TrainerBitIdenticalAcrossDecompositions(t *testing.T) {
	ds := tinyDataset()
	hier := dist.NewHierarchy(2, 2)
	run := func(precision tensor.Precision, workers int, topology *dist.Hierarchy, bucket int, overlap bool) *Result {
		res, err := Train(Config{
			Model: convFactory(4), Workers: workers, Shards: 4,
			Algo: dist.Ring, Topology: topology, Bucket: bucket, Overlap: overlap,
			Precision: precision,
			Batch:     64, Epochs: 2, Method: LARSWarmup,
			BaseLR: 0.1, WarmupEpochs: 1, Trust: 0.05, Seed: 9,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(tensor.F16, 1, nil, 0, false)
	if ref.Diverged {
		t.Fatal("F16 reference run diverged")
	}
	if ref.Scale.Scale == 0 {
		t.Fatalf("F16 run reported no loss-scaler activity: %+v", ref.Scale)
	}
	for _, tc := range []struct {
		label string
		res   *Result
	}{
		{"P=2 flat", run(tensor.F16, 2, nil, 0, false)},
		{"P=4 flat", run(tensor.F16, 4, nil, 0, false)},
		{"P=4 hierarchical", run(tensor.F16, 4, &hier, 0, false)},
		{"P=4 overlap", run(tensor.F16, 4, nil, 33, true)},
	} {
		if len(tc.res.History) != len(ref.History) {
			t.Fatalf("%s: history lengths differ", tc.label)
		}
		for e := range ref.History {
			a, b := ref.History[e], tc.res.History[e]
			if a.TrainLoss != b.TrainLoss {
				t.Fatalf("%s: epoch %d F16 loss %v differs bitwise from reference %v", tc.label, e, b.TrainLoss, a.TrainLoss)
			}
			if !(math.IsNaN(a.TestAcc) && math.IsNaN(b.TestAcc)) && a.TestAcc != b.TestAcc {
				t.Fatalf("%s: epoch %d accuracy differs bitwise", tc.label, e)
			}
		}
	}
	// Negative control: the same seed at F32 must not reproduce the F16
	// trajectory bit for bit.
	f32 := run(tensor.F32, 1, nil, 0, false)
	same := true
	for e := range ref.History {
		if f32.History[e].TrainLoss != ref.History[e].TrainLoss {
			same = false
		}
	}
	if same {
		t.Fatal("F16 and F32 trajectories agree bitwise — the precision switch is not reaching the kernels")
	}
}

// TestF16AccuracyParity: mixed precision must not cost accuracy on the
// synthetic task — the paper's observation that half-storage training with
// float32 masters matches full precision.
func TestF16AccuracyParity(t *testing.T) {
	ds := tinyDataset()
	run := func(p tensor.Precision) *Result {
		res, err := Train(Config{
			Model: mlpFactory(4), Batch: 32, Epochs: 8, Method: BaselineSGD,
			BaseLR: 0.1, Seed: 1, Precision: p,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full, half := run(tensor.F32), run(tensor.F16)
	if half.Diverged {
		t.Fatal("F16 run diverged")
	}
	if half.TestAcc < full.TestAcc-0.05 {
		t.Fatalf("F16 accuracy %v trails F32 accuracy %v by more than 5 points", half.TestAcc, full.TestAcc)
	}
}

// TestF16OverflowRecovery forces overflow with an absurd initial loss scale:
// the scaled seed gradients exceed binary16 range, the scaler must skip
// those steps and halve until training proceeds, and the run still learns.
func TestF16OverflowRecovery(t *testing.T) {
	ds := tinyDataset()
	res, err := Train(Config{
		Model: mlpFactory(4), Batch: 32, Epochs: 8, Method: BaselineSGD,
		BaseLR: 0.1, Seed: 1, Precision: tensor.F16, LossScale: 1 << 24,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("run diverged instead of recovering from overflow")
	}
	if res.Scale.Overflows == 0 {
		t.Fatalf("scale 2^24 caused no overflows — the overflow path is dead: %+v", res.Scale)
	}
	if res.Scale.Scale >= 1<<24 {
		t.Fatalf("scale did not back off: %+v", res.Scale)
	}
	if res.TestAcc < 0.8 {
		t.Fatalf("accuracy %v after recovery, want >= 0.8", res.TestAcc)
	}
	// And the recovery itself is deterministic: a second identical run
	// reproduces the trajectory and the scaler counters exactly.
	res2, err := Train(Config{
		Model: mlpFactory(4), Batch: 32, Epochs: 8, Method: BaselineSGD,
		BaseLR: 0.1, Seed: 1, Precision: tensor.F16, LossScale: 1 << 24,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Scale != res.Scale || res2.FinalLoss != res.FinalLoss {
		t.Fatalf("overflow recovery not deterministic: %+v vs %+v", res2.Scale, res.Scale)
	}
}
