// Package core is the paper's primary contribution as a reusable engine:
// large-batch synchronous data-parallel training with the LARS optimizer,
// gradual warmup and polynomial learning-rate decay, under a fixed epoch
// budget.
//
// The three training recipes the paper compares are first-class here:
//
//   - BaselineSGD        — momentum SGD at the reference batch size,
//   - LinearScalingWarmup — Goyal et al.'s large-batch recipe (the "without
//     LARS" curves of Figure 4 and the failures of Table 5),
//   - LARSWarmup          — the paper's recipe (Table 7, Figure 4).
//
// A Trainer couples a model factory, the dist engine, the optimizer, the
// schedule and the dataset into one reproducible run that records per-epoch
// metrics, detects divergence (the paper's 0.1%-accuracy rows), and reports
// communication statistics.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Method selects the training recipe.
type Method int

// Recipe choices.
const (
	// BaselineSGD is momentum SGD with the poly schedule at the base rate —
	// the paper's small-batch reference runs.
	BaselineSGD Method = iota
	// LinearScalingWarmup scales the base rate linearly with the batch size
	// and ramps it up over the warmup epochs (Goyal et al. 2017).
	LinearScalingWarmup
	// LARSWarmup adds Layer-wise Adaptive Rate Scaling on top of linear
	// scaling and warmup — the paper's recipe.
	LARSWarmup
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case BaselineSGD:
		return "sgd"
	case LinearScalingWarmup:
		return "linear+warmup"
	case LARSWarmup:
		return "lars+warmup"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config describes one training run.
type Config struct {
	// Model builds one replica; called once per worker with distinct seeds
	// derived from Seed. All replicas are weight-synchronized before step 0.
	Model func(seed uint64) *nn.Network

	Workers int            // data-parallel worker count (default 1)
	Algo    dist.Algorithm // gradient reduction pattern (default Central)

	// Topology optionally arranges the workers into a two-tier node
	// hierarchy (dist.Hierarchy): gradients reduce intra-node first, node
	// leaders exchange across the cluster fabric, and Result.TierComm
	// reports the schedule split by fabric tier. Topology.Workers() must
	// equal Workers; Algo is ignored when set. The trajectory is
	// bit-identical to a flat run with the same Shards — the hierarchy
	// changes only the communication accounting.
	Topology *dist.Hierarchy

	// Shards is the number of logical gradient shards per global batch
	// (default Workers). The shard split — not the worker count — fixes
	// the numerical result: runs with equal Shards are bit-identical for
	// any Workers, which is how the multi-worker path reproduces the
	// single-worker trajectory exactly (pin Shards across both runs).
	Shards int
	// Bucket chunks gradient reduction into buckets of at most this many
	// float32 coordinates (0 = one bucket; see dist.Config.BucketElems).
	Bucket int
	// Overlap fires each bucket's reduction as soon as its gradients are
	// final on every shard, inside the backward pass, instead of after it
	// (dist.Config.Overlap). Values are bit-identical either way;
	// Result.Overlap reports how much of the schedule hid behind the
	// backward. Pair with Bucket — a single bucket cannot hide.
	Overlap bool
	// Reduction selects the gradient-reduction arithmetic
	// (dist.Config.Reduction): CanonicalF64 — the default float64
	// canonical-order sum — or PairwiseF32, the fixed-tree float32 kernel.
	// Either policy keeps runs bit-identical across Workers, topologies
	// and Overlap for a pinned shard split; the two policies round
	// differently from each other, so pin the policy too when comparing
	// trajectories.
	Reduction dist.Reduction
	// Codec optionally compresses gradient exchange payloads (lossy;
	// dist.FP16Codec, dist.NewOneBitCodec).
	Codec dist.Codec
	// Profile enables the per-step phase profiler (dist.Config.Profile):
	// Result.Profile then reports hot-loop wall time split into
	// gemm/im2col/reduce/codec/other buckets that sum exactly to the
	// profiled wall time. The profiler is process-global — run one
	// profiled trainer at a time.
	Profile bool
	// Faults optionally injects deterministic drops/stalls into the
	// reduction schedule; recovery is exact (see dist.FaultPlan). Workers
	// the plan marks permanently Dead need Elastic, or Train returns a
	// typed *dist.WorkerDeadError when the death bites.
	Faults *dist.FaultPlan
	// Elastic enables elastic membership (dist.Config.Elastic): a worker
	// whose recovery fails Elastic.EvictAfter consecutive steps is
	// evicted, its shards rebalance over the survivors, and the run
	// continues on P−1 workers — the preemptible-fleet scenario.
	// Result.Membership reports evictions, rebalances and the steps spent
	// at each world size. The trajectory of the surviving run is
	// bit-identical across topologies under the same plan and policy.
	Elastic *dist.Elastic

	Batch  int // global batch size B
	Epochs int // fixed epoch budget E (the paper's invariant)

	Method Method
	// BaseLR is the reference learning rate at BaseBatch. Linear scaling
	// uses BaseLR·Batch/BaseBatch as the target rate.
	BaseLR    float64
	BaseBatch int
	// WarmupEpochs ramps the rate linearly at the start (Table 7 uses up
	// to 13 epochs at batch 4096).
	WarmupEpochs float64
	PolyPower    float64 // default 2, the paper's poly policy
	Momentum     float64 // default 0.9
	WeightDecay  float64 // default 0.0005
	Trust        float64 // LARS trust coefficient, default 0.01 at micro scale

	// Augment enables the weak augmentation (±2 crop, flip) used by the
	// paper's "weak data augmentation" rows.
	Augment bool

	// Resolutions, when non-nil, is the per-epoch input-resolution schedule
	// (the progressive-resolution curriculum of the ENTR hypothesis, e.g.
	// parsed from "12x12@0-3,24x24@4+"). Each epoch's batches are
	// materialized at Resolutions.At(epoch) via data.Dataset.GatherAt —
	// resized with the deterministic kernel resampler before augmentation —
	// and the single engine dispatches the same resized batch to every
	// worker, so all replicas switch resolution in lockstep at epoch
	// boundaries. Shard/span logic is untouched (batches change shape, not
	// indices), which preserves the bit-identity contract across Workers,
	// Topology, Overlap and pinned Shards at both precisions. Evaluation
	// always runs at the dataset's native resolution. Requires a model
	// whose parameter count is resolution-independent (a GAP-headed
	// all-conv net such as models.NewMicroConvNet or NewMicroResNet);
	// flatten→fc models panic at the first off-native shape. Nil trains
	// every epoch at native resolution — bit-identical to the pre-schedule
	// trainer.
	Resolutions *data.ResolutionSchedule

	// Precision selects the storage precision of the conv/fc GEMM operands
	// (tensor.F32, the default, or tensor.F16). Under F16 every replica
	// computes forward and backward through the binary16 kernels with
	// float32 accumulation while the optimizer, gradient reduction and
	// weight broadcast all stay on float32 masters, and Train drives
	// dynamic loss scaling (see LossScale). The F16 trajectory is
	// bit-identical across Workers, Topology, Overlap and pinned Shards —
	// the same decomposition-invariance contract as F32 — but differs from
	// the F32 trajectory (operands round through binary16).
	Precision tensor.Precision
	// LossScale is the initial dynamic loss scale used when Precision is
	// F16 (0 selects opt.DefaultLossScale, 2^16). The seed gradient is
	// multiplied by the scale before backward so small gradients survive
	// binary16 storage; after reduction the float32 master gradients are
	// unscaled exactly (the scale is a power of two) or, on Inf/NaN, the
	// step is skipped and the scale halves. Result.Scale reports the
	// scaler's activity.
	LossScale float64

	// SyncEvery, when > 1, switches the run to local SGD
	// (dist.Config.SyncEvery): every worker steps its own optimizer — the
	// same recipe as the master, LARS or momentum SGD per Method — on its
	// own shard gradients for SyncEvery steps, then the fleet averages
	// weights. Communication volume scales by exactly 1/SyncEvery (see
	// comm.ExpectedLocalSGDStats) at the cost of inter-sync weight drift;
	// Result.LocalSGD reports the step/round ledger. 0 or 1 is the
	// synchronous every-step path, bit-identical to a config without the
	// field. Local mode is incompatible with MicroBatch (gradient
	// accumulation assumes a single master optimizer), and F16 runs train
	// without dynamic loss scaling (the scaler's overflow protocol needs
	// the master-gradient barrier; LossScale is rejected).
	SyncEvery int
	// IntraSyncEvery, when > 0 (requires SyncEvery > 1 and Topology),
	// additionally averages weights inside each node every IntraSyncEvery
	// steps on the cheap intra fabric — the hierarchical local-SGD
	// schedule. Must divide SyncEvery so full boundaries subsume intra
	// ones. Result.TierComm attributes the extra rounds to the intra tier.
	IntraSyncEvery int

	// MicroBatch, when positive and smaller than Batch, processes each
	// global batch in sequential chunks of this size, accumulating
	// gradients before the optimizer step — gradient accumulation, the
	// same memory-driven micro-batching the cluster simulator models for
	// Table 9's B=8192 single-DGX-1 row. The optimizer trajectory matches
	// the single-pass batch up to float32 summation order (batch-norm
	// statistics are per-chunk, as on real hardware).
	MicroBatch int

	Seed uint64
	// EvalEveryEpochs controls how often test accuracy is measured
	// (always at the final epoch). 0 means every epoch.
	EvalEveryEpochs int
	// MaxLoss aborts the run as diverged when the training loss exceeds
	// it (default 25).
	MaxLoss float64
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.BaseLR == 0 {
		c.BaseLR = 0.05
	}
	if c.BaseBatch == 0 {
		c.BaseBatch = 32
	}
	if c.PolyPower == 0 {
		c.PolyPower = 2
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 0.0005
	}
	if c.Trust == 0 {
		c.Trust = 0.01
	}
	if c.EvalEveryEpochs == 0 {
		c.EvalEveryEpochs = 1
	}
	if c.MaxLoss == 0 {
		c.MaxLoss = 25
	}
	return c
}

// TargetLR returns the post-warmup learning rate implied by the recipe.
func (c Config) TargetLR() float64 {
	switch c.Method {
	case BaselineSGD:
		return c.BaseLR
	default:
		return opt.LinearScalingRule(c.BaseLR, c.BaseBatch, c.Batch)
	}
}

// EpochStats records one epoch of training.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	TestAcc   float64 // NaN when not evaluated this epoch
	LR        float64 // rate at the first step of the epoch
	// ResH, ResW record the input resolution the epoch trained at (the
	// dataset's native size unless Config.Resolutions scheduled another).
	ResH, ResW int
}

// Result is the outcome of one run.
type Result struct {
	Config     Config
	History    []EpochStats
	FinalLoss  float64
	TestAcc    float64 // final top-1 test accuracy
	BestAcc    float64 // peak test accuracy over the run (the paper reports peak)
	Diverged   bool
	Iterations int64
	Wall       time.Duration
	Comm       dist.CommStats
	// TierComm splits Comm by fabric tier when Config.Topology arranged
	// the workers hierarchically; zero for flat runs.
	TierComm dist.TierStats
	// Overlap splits Comm into the rounds and bytes hidden behind the
	// backward pass versus exposed at the step barrier. Everything is
	// exposed unless Config.Overlap was set.
	Overlap dist.OverlapStats
	// LocalSGD is the local-SGD step/round ledger (local steps taken, full
	// weight-averaging rounds, intra-node-only rounds). Zero unless
	// Config.SyncEvery > 1.
	LocalSGD dist.LocalSGDStats
	// Membership reports the elastic-membership activity of the run:
	// evictions, rebalanced shards and resync bytes, and the number of
	// steps executed at each world size. Zero evictions unless
	// Config.Elastic was set and the fault plan killed a worker.
	Membership dist.MembershipStats
	// Profile splits the run's hot-loop wall time into
	// gemm/im2col/convert/reduce/codec/other phase buckets (summing
	// exactly to Profile.WallNS). Zero unless Config.Profile was set.
	Profile dist.ProfileStats
	// Scale reports the dynamic loss scaler's final scale and its
	// overflow/growth counters. Zero unless the run trained under
	// Config.Precision == tensor.F16 (or an explicit Config.LossScale).
	Scale opt.ScaleStats
}

// Train runs the configured recipe on the dataset and returns the result.
// It only returns an error for infrastructure failures (worker panics);
// divergence is reported in Result.Diverged, matching how the paper reports
// diverged runs as 0.1%-accuracy rows rather than aborted experiments.
func Train(cfg Config, ds *data.Synth) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil {
		panic("core: Config.Model is required")
	}
	local := cfg.SyncEvery > 1
	if local {
		if cfg.MicroBatch > 0 && cfg.MicroBatch < cfg.Batch {
			panic("core: MicroBatch is incompatible with SyncEvery > 1")
		}
		if cfg.LossScale > 0 {
			panic("core: LossScale is incompatible with SyncEvery > 1 (local mode trains unscaled)")
		}
	}
	start := time.Now()

	replicas := make([]*nn.Network, cfg.Workers)
	for i := range replicas {
		replicas[i] = cfg.Model(cfg.Seed + uint64(i)*7919)
		if cfg.Precision != tensor.F32 {
			replicas[i].SetPrecision(cfg.Precision)
		}
	}
	engine := dist.NewEngine(dist.Config{
		Algo: cfg.Algo, Topology: cfg.Topology, Shards: cfg.Shards, BucketElems: cfg.Bucket,
		Overlap: cfg.Overlap, Reduction: cfg.Reduction, Codec: cfg.Codec,
		Faults: cfg.Faults, Elastic: cfg.Elastic, Profile: cfg.Profile,
		SyncEvery: cfg.SyncEvery, IntraSyncEvery: cfg.IntraSyncEvery,
	}, replicas)
	defer engine.Close()

	// newStepper builds one instance of the run's optimizer recipe over the
	// given parameters: the master's in synchronous mode, one per replica
	// in local mode (each worker steps privately between weight averages).
	newStepper := func(params []*nn.Param) opt.Optimizer {
		switch cfg.Method {
		case LARSWarmup:
			return opt.NewLARS(params, opt.LARSConfig{
				Momentum: cfg.Momentum, WeightDecay: cfg.WeightDecay, Trust: cfg.Trust,
			})
		default:
			return opt.NewSGD(params, opt.SGDConfig{
				Momentum: cfg.Momentum, WeightDecay: cfg.WeightDecay,
			})
		}
	}
	var optimizer opt.Optimizer
	if local {
		steppers := make([]dist.Stepper, len(replicas))
		for w := range steppers {
			steppers[w] = newStepper(replicas[w].Params())
		}
		engine.SetLocalSteppers(steppers)
	} else {
		optimizer = newStepper(engine.Master().Params())
	}

	stepsPerEpoch := len(data.Batches(make([]int, ds.Train.Len()), cfg.Batch))
	if stepsPerEpoch == 0 {
		return nil, fmt.Errorf("core: batch %d exceeds training set %d", cfg.Batch, ds.Train.Len())
	}
	totalSteps := stepsPerEpoch * cfg.Epochs
	var sched opt.Schedule = opt.Poly{Base: cfg.TargetLR(), Power: cfg.PolyPower}
	if cfg.Method != BaselineSGD && cfg.WarmupEpochs > 0 {
		sched = opt.Warmup{Inner: sched, WarmupSteps: int(cfg.WarmupEpochs * float64(stepsPerEpoch))}
	}

	var aug *data.Augmenter
	if cfg.Augment {
		aug = data.NewAugmenter(2, true, rng.New(cfg.Seed^0xa5a5a5a5))
	}

	// Dynamic loss scaling rides the F16 path (or an explicit LossScale):
	// the engine scales the seed gradient before backward; after reduction
	// the scaler unscales the float32 master gradients exactly, or skips
	// the step and halves on overflow.
	// Local mode trains F16 unscaled: the scaler's overflow protocol
	// (inspect master gradients, skip the shared step) has no master
	// gradient to inspect when every worker steps privately.
	var scaler *opt.LossScaler
	if !local && (cfg.Precision == tensor.F16 || cfg.LossScale > 0) {
		scaler = opt.NewLossScaler(cfg.LossScale, 0)
	}

	// Gradient-accumulation buffers (allocated only when micro-batching).
	var accum []*tensor.Tensor
	masterParams := engine.Master().Params()
	if cfg.MicroBatch > 0 && cfg.MicroBatch < cfg.Batch {
		accum = make([]*tensor.Tensor, len(masterParams))
		for i, p := range masterParams {
			accum[i] = tensor.New(p.W.Shape...)
		}
	}
	// computeBatchGradient leaves the batch-mean gradient in the master's
	// parameter gradients, chunking through MicroBatch-sized pieces when
	// accumulation is enabled.
	computeBatchGradient := func(x *tensor.Tensor, labels []int) (float64, error) {
		if accum == nil {
			return engine.ComputeGradient(x, labels)
		}
		for _, a := range accum {
			a.Zero()
		}
		imLen := x.Numel() / x.Shape[0]
		b := x.Shape[0]
		var total float64
		for lo := 0; lo < b; lo += cfg.MicroBatch {
			hi := lo + cfg.MicroBatch
			if hi > b {
				hi = b
			}
			shape := append([]int{hi - lo}, x.Shape[1:]...)
			chunk := tensor.FromSlice(x.Data[lo*imLen:hi*imLen], shape...)
			loss, err := engine.ComputeGradient(chunk, labels[lo:hi])
			if err != nil {
				return 0, err
			}
			w := float32(hi-lo) / float32(b)
			total += loss * float64(w)
			for i, p := range masterParams {
				accum[i].Axpy(w, p.G)
			}
		}
		for i, p := range masterParams {
			p.G.CopyFrom(accum[i])
		}
		return total, nil
	}

	res := &Result{Config: cfg, TestAcc: math.NaN()}
	_, nativeH, nativeW := ds.Train.ImageShape()
	step := 0
	for epoch := 0; epoch < cfg.Epochs && !res.Diverged; epoch++ {
		resH, resW := nativeH, nativeW
		if cfg.Resolutions != nil {
			resH, resW = cfg.Resolutions.At(epoch)
		}
		perm := ds.Train.Shuffled(cfg.Seed, epoch)
		var epochLoss float64
		var epochSteps int
		lrAtStart := sched.LR(step, totalSteps)
		for _, idx := range data.Batches(perm, cfg.Batch) {
			// At the native resolution GatherAt is exactly Gather, so
			// nil-schedule runs reproduce the pre-schedule trainer
			// bit-for-bit.
			x, labels, err := ds.Train.GatherAt(idx, resH, resW)
			if err != nil {
				return nil, err
			}
			if aug != nil {
				aug.Apply(x)
			}
			var loss float64
			if local {
				// One local-SGD step: shard gradients stay on their
				// workers, each steps its private optimizer, and the
				// engine averages weights at window boundaries.
				loss, err = engine.LocalStep(x, labels, sched.LR(step, totalSteps))
				if err != nil {
					return nil, err
				}
				if math.IsNaN(loss) || math.IsInf(loss, 0) || loss > cfg.MaxLoss {
					res.Diverged = true
					epochLoss += loss
					epochSteps++
					break
				}
				epochLoss += loss
				epochSteps++
				step++
				continue
			}
			if scaler != nil {
				engine.SetLossScale(scaler.Scale())
			}
			loss, err = computeBatchGradient(x, labels)
			if err != nil {
				return nil, err
			}
			if math.IsNaN(loss) || math.IsInf(loss, 0) || loss > cfg.MaxLoss {
				res.Diverged = true
				epochLoss += loss
				epochSteps++
				break
			}
			if scaler != nil && !scaler.Update(masterParams) {
				// Overflowed gradients: skip the optimizer step and the
				// weight broadcast (weights are unchanged, so the replicas
				// are still in sync) and retry at the halved scale. The
				// schedule still advances — a skipped step consumes its
				// slot, as on real mixed-precision trainers.
				epochLoss += loss
				epochSteps++
				step++
				continue
			}
			optimizer.Step(sched.LR(step, totalSteps))
			if err := engine.BroadcastWeights(); err != nil {
				return nil, err
			}
			epochLoss += loss
			epochSteps++
			step++
		}
		stats := EpochStats{
			Epoch:     epoch,
			TrainLoss: epochLoss / float64(epochSteps),
			TestAcc:   math.NaN(),
			LR:        lrAtStart,
			ResH:      resH,
			ResW:      resW,
		}
		last := epoch == cfg.Epochs-1 || res.Diverged
		if last || epoch%cfg.EvalEveryEpochs == 0 {
			// Local mode pins evaluation to one live replica: between
			// sync boundaries the replicas legitimately disagree.
			var acc float64
			var err error
			if local {
				acc, err = engine.EvalAccuracyLocal(ds.Test.Images, ds.Test.Labels, 256)
			} else {
				acc, err = engine.EvalAccuracy(ds.Test.Images, ds.Test.Labels, 256)
			}
			if err != nil {
				return nil, err
			}
			stats.TestAcc = acc
			if stats.TestAcc > res.BestAcc {
				res.BestAcc = stats.TestAcc
			}
			res.TestAcc = stats.TestAcc
		}
		res.FinalLoss = stats.TrainLoss
		res.History = append(res.History, stats)
	}
	res.Iterations = engine.Steps()
	res.Comm = engine.Stats()
	res.TierComm = engine.TierStats()
	res.Overlap = engine.OverlapStats()
	res.LocalSGD = engine.LocalSGD()
	res.Membership = engine.Membership()
	res.Profile = engine.Profile()
	if scaler != nil {
		res.Scale = scaler.Stats()
	}
	res.Wall = time.Since(start)
	return res, nil
}
