// Package opt implements the optimizers and learning-rate schedules of the
// paper's large-batch training recipe:
//
//   - SGD with momentum and weight decay (the baseline),
//   - LARS, Layer-wise Adaptive Rate Scaling (You/Gitman/Ginsburg 2017), the
//     paper's core enabling algorithm,
//   - the linear scaling rule (Krizhevsky 2014),
//   - gradual warmup (Goyal et al. 2017), and
//   - polynomial decay with power 2 ("poly policy"), the schedule used in
//     every experiment table of the paper.
package opt

import (
	"fmt"
	"math"
)

// Schedule maps a global iteration index to a learning rate. Schedules are
// pure functions of (step, totalSteps) so that every worker in a
// data-parallel run computes the same rate without coordination.
type Schedule interface {
	// LR returns the learning rate for step ∈ [0, totalSteps).
	LR(step, totalSteps int) float64
	fmt.Stringer
}

// Constant is a fixed learning rate.
type Constant struct{ Base float64 }

// LR implements Schedule.
func (c Constant) LR(step, totalSteps int) float64 { return c.Base }

func (c Constant) String() string { return fmt.Sprintf("constant(%g)", c.Base) }

// Poly is the polynomial decay policy η(t) = Base·(1 − t/T)^Power. The paper
// uses Power = 2 throughout (Tables 5 and 7).
type Poly struct {
	Base  float64
	Power float64
}

// LR implements Schedule.
func (p Poly) LR(step, totalSteps int) float64 {
	if totalSteps <= 0 {
		return p.Base
	}
	frac := 1 - float64(step)/float64(totalSteps)
	if frac < 0 {
		frac = 0
	}
	pw := p.Power
	if pw == 0 {
		pw = 1
	}
	return p.Base * math.Pow(frac, pw)
}

func (p Poly) String() string { return fmt.Sprintf("poly(%g, power=%g)", p.Base, p.Power) }

// Cosine anneals the rate from Base to Min along half a cosine period —
// not used by the paper but the schedule most follow-up large-batch work
// adopted; provided for ablations.
type Cosine struct {
	Base float64
	Min  float64
}

// LR implements Schedule.
func (c Cosine) LR(step, totalSteps int) float64 {
	if totalSteps <= 0 {
		return c.Base
	}
	frac := float64(step) / float64(totalSteps)
	if frac > 1 {
		frac = 1
	}
	return c.Min + 0.5*(c.Base-c.Min)*(1+math.Cos(math.Pi*frac))
}

func (c Cosine) String() string { return fmt.Sprintf("cosine(%g->%g)", c.Base, c.Min) }

// MultiStep drops the rate by Gamma at each milestone step (Goyal et al.'s
// /10 at epochs 30/60/80 uses this form).
type MultiStep struct {
	Base       float64
	Milestones []int
	Gamma      float64
}

// LR implements Schedule.
func (m MultiStep) LR(step, totalSteps int) float64 {
	lr := m.Base
	for _, ms := range m.Milestones {
		if step >= ms {
			lr *= m.Gamma
		}
	}
	return lr
}

func (m MultiStep) String() string {
	return fmt.Sprintf("multistep(%g, %v, x%g)", m.Base, m.Milestones, m.Gamma)
}

// Warmup wraps another schedule with Goyal-style gradual warmup: the rate
// ramps linearly from Inner's base rate divided by the scaling factor up to
// the full rate over WarmupSteps, then hands over to Inner. Warmup exists
// because the linear scaling rule demands a very large rate that diverges if
// applied from step 0 (the paper's Table 5 failures at LR ≥ 0.07).
type Warmup struct {
	Inner       Schedule
	WarmupSteps int
	// StartFraction is the fraction of the target rate at step 0
	// (default ~0, ramping to 1 at WarmupSteps).
	StartFraction float64
}

// LR implements Schedule.
func (w Warmup) LR(step, totalSteps int) float64 {
	if step >= w.WarmupSteps || w.WarmupSteps <= 0 {
		return w.Inner.LR(step, totalSteps)
	}
	target := w.Inner.LR(w.WarmupSteps, totalSteps)
	frac := w.StartFraction + (1-w.StartFraction)*float64(step+1)/float64(w.WarmupSteps)
	return target * frac
}

func (w Warmup) String() string {
	return fmt.Sprintf("warmup(%d steps, %s)", w.WarmupSteps, w.Inner)
}

// LinearScalingRule implements Krizhevsky's rule: when the batch grows from
// baseBatch to batch, the base learning rate grows proportionally.
func LinearScalingRule(baseLR float64, baseBatch, batch int) float64 {
	return baseLR * float64(batch) / float64(baseBatch)
}

// StepsPerEpoch returns ceil(datasetSize / batch) — the paper's E·n/B
// iteration count divided by E.
func StepsPerEpoch(datasetSize, batch int) int {
	return (datasetSize + batch - 1) / batch
}

// TotalSteps returns the fixed-epoch-budget iteration count E·n/B that all
// of the paper's comparisons hold constant.
func TotalSteps(epochs, datasetSize, batch int) int {
	return epochs * StepsPerEpoch(datasetSize, batch)
}
