package opt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/rng"
)

func TestConstantSchedule(t *testing.T) {
	s := Constant{Base: 0.1}
	if s.LR(0, 100) != 0.1 || s.LR(99, 100) != 0.1 {
		t.Fatal("constant schedule must not vary")
	}
}

func TestPolySchedule(t *testing.T) {
	// The paper's poly policy with power 2: starts at base, ends at 0.
	s := Poly{Base: 0.4, Power: 2}
	if got := s.LR(0, 100); got != 0.4 {
		t.Fatalf("poly start = %v, want 0.4", got)
	}
	if got := s.LR(50, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("poly midpoint = %v, want 0.1 (quarter of base)", got)
	}
	if got := s.LR(100, 100); got != 0 {
		t.Fatalf("poly end = %v, want 0", got)
	}
}

func TestPolyMonotoneDecreasing(t *testing.T) {
	s := Poly{Base: 1, Power: 2}
	prev := math.Inf(1)
	for step := 0; step <= 200; step++ {
		v := s.LR(step, 200)
		if v > prev {
			t.Fatalf("poly increased at step %d: %v > %v", step, v, prev)
		}
		prev = v
	}
}

func TestWarmupRampsToInner(t *testing.T) {
	inner := Constant{Base: 1.0}
	w := Warmup{Inner: inner, WarmupSteps: 10}
	if got := w.LR(0, 100); got > 0.2 {
		t.Fatalf("warmup step 0 = %v, want small", got)
	}
	for step := 1; step < 10; step++ {
		if w.LR(step, 100) < w.LR(step-1, 100) {
			t.Fatal("warmup must ramp monotonically")
		}
	}
	if got := w.LR(10, 100); got != 1.0 {
		t.Fatalf("post-warmup = %v, want inner rate 1.0", got)
	}
}

func TestWarmupWithPoly(t *testing.T) {
	// Table 7's recipe: warmup for W epochs then poly(power=2) decay.
	sched := Warmup{Inner: Poly{Base: 10, Power: 2}, WarmupSteps: 50}
	peak := 0.0
	peakStep := 0
	for step := 0; step < 1000; step++ {
		v := sched.LR(step, 1000)
		if v > peak {
			peak, peakStep = v, step
		}
	}
	if peakStep < 40 || peakStep > 60 {
		t.Fatalf("peak LR at step %d, want near end of warmup (50)", peakStep)
	}
	if peak > 10 {
		t.Fatalf("peak %v exceeds base rate", peak)
	}
}

func TestLinearScalingRule(t *testing.T) {
	// Krizhevsky's rule: B 512→4096 is 8x, so LR 0.02→0.16 (Table 5 text).
	if got := LinearScalingRule(0.02, 512, 4096); math.Abs(got-0.16) > 1e-12 {
		t.Fatalf("linear scaling = %v, want 0.16", got)
	}
}

func TestTotalSteps(t *testing.T) {
	// Table 2: 100 epochs of 1.28M images at batch 512 = 250,000 iterations.
	if got := TotalSteps(100, 1280000, 512); got != 250000 {
		t.Fatalf("TotalSteps = %d, want 250000", got)
	}
	// And batch 32768: 100 * ceil(1280000/32768) = 100 * 40 = 4000.
	if got := TotalSteps(100, 1280000, 32768); got != 4000 {
		t.Fatalf("TotalSteps = %d, want 4000", got)
	}
}

func makeParam(t *testing.T, seed uint64, n int) *nn.Param {
	t.Helper()
	p := nn.NewParam("w", n)
	r := rng.New(seed)
	p.W.FillNormal(r, 0, 1)
	p.G.FillNormal(r, 0, 0.1)
	return p
}

func TestSGDStepDirection(t *testing.T) {
	p := nn.NewParam("w", 2)
	p.W.Data[0], p.W.Data[1] = 1, -1
	p.G.Data[0], p.G.Data[1] = 0.5, -0.5
	s := NewSGD([]*nn.Param{p}, SGDConfig{Momentum: 0, WeightDecay: 0})
	s.Step(0.1)
	if math.Abs(float64(p.W.Data[0])-0.95) > 1e-6 || math.Abs(float64(p.W.Data[1])+0.95) > 1e-6 {
		t.Fatalf("SGD step: got %v", p.W.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := nn.NewParam("w", 1)
	p.W.Data[0] = 0
	s := NewSGD([]*nn.Param{p}, SGDConfig{Momentum: 0.9})
	// Constant gradient 1, lr 1: velocity approaches 1/(1-0.9) = 10.
	for i := 0; i < 200; i++ {
		p.G.Data[0] = 1
		s.Step(1)
	}
	v := s.Velocity(0).Data[0]
	if math.Abs(float64(v)-10) > 0.1 {
		t.Fatalf("terminal velocity = %v, want ~10", v)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := nn.NewParam("w", 1)
	p.W.Data[0] = 1
	s := NewSGD([]*nn.Param{p}, SGDConfig{WeightDecay: 0.1})
	p.G.Data[0] = 0 // no data gradient: only decay acts
	s.Step(0.5)
	want := 1 - 0.5*0.1
	if math.Abs(float64(p.W.Data[0])-want) > 1e-6 {
		t.Fatalf("decayed weight = %v, want %v", p.W.Data[0], want)
	}
}

func TestSGDNoDecayRespected(t *testing.T) {
	p := nn.NewParam("b", 1)
	p.NoDecay = true
	p.W.Data[0] = 1
	s := NewSGD([]*nn.Param{p}, SGDConfig{WeightDecay: 0.1})
	p.G.Data[0] = 0
	s.Step(0.5)
	if p.W.Data[0] != 1 {
		t.Fatalf("NoDecay param changed: %v", p.W.Data[0])
	}
}

func TestLARSTrustRatio(t *testing.T) {
	p := makeParam(t, 1, 1000)
	cfg := DefaultLARSConfig()
	cfg.Momentum = 0
	l := NewLARS([]*nn.Param{p}, cfg)
	wN, gN := p.W.Norm2(), p.G.Norm2()
	l.Step(1)
	want := cfg.Trust * wN / (gN + cfg.WeightDecay*wN + cfg.Eps)
	got := l.TrustRatios()[0]
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("trust ratio = %v, want %v", got, want)
	}
}

// TestLARSGradientScaleInvariance checks LARS's defining property: with no
// weight decay, rescaling the gradient by any positive constant leaves the
// update unchanged — the local rate normalizes ‖∇w‖ away. This is exactly
// why LARS tolerates the huge effective rates of 32K-batch training.
func TestLARSGradientScaleInvariance(t *testing.T) {
	f := func(seed uint64, scaleBits uint8) bool {
		scale := 1 + float64(scaleBits)/8 // [1, ~33)
		mk := func() *nn.Param {
			p := nn.NewParam("w", 64)
			r := rng.New(seed)
			p.W.FillNormal(r, 0, 1)
			p.G.FillNormal(r, 0, 0.1)
			return p
		}
		cfg := LARSConfig{Momentum: 0, WeightDecay: 0, Trust: 0.01, Eps: 0}
		p1 := mk()
		NewLARS([]*nn.Param{p1}, cfg).Step(0.5)
		p2 := mk()
		p2.G.Scale(float32(scale))
		NewLARS([]*nn.Param{p2}, cfg).Step(0.5)
		for i := range p1.W.Data {
			if math.Abs(float64(p1.W.Data[i]-p2.W.Data[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestLARSRelativeUpdateBounded verifies ‖Δw‖/‖w‖ ≈ Trust·lr regardless of
// gradient magnitude — the "same relative step for every layer" behaviour.
func TestLARSRelativeUpdateBounded(t *testing.T) {
	for _, gradScale := range []float32{1e-4, 1, 1e4} {
		p := nn.NewParam("w", 256)
		r := rng.New(7)
		p.W.FillNormal(r, 0, 1)
		p.G.FillNormal(r, 0, gradScale)
		before := p.W.Clone()
		cfg := LARSConfig{Momentum: 0, WeightDecay: 0, Trust: 0.001, Eps: 0}
		NewLARS([]*nn.Param{p}, cfg).Step(1)
		before.Sub(p.W) // Δw
		rel := before.Norm2() / p.W.Norm2()
		want := cfg.Trust * 1
		if math.Abs(rel-want)/want > 0.05 {
			t.Errorf("gradScale %v: relative update %v, want ~%v", gradScale, rel, want)
		}
	}
}

func TestLARSZeroWeightFallback(t *testing.T) {
	// A zero-norm parameter must not divide by zero; the local rate
	// falls back to 1 (plain SGD step).
	p := nn.NewParam("w", 4)
	p.G.Data[0] = 1
	l := NewLARS([]*nn.Param{p}, DefaultLARSConfig())
	l.Step(0.1)
	if p.W.HasNaN() {
		t.Fatal("LARS produced NaN on zero weights")
	}
	if p.W.Data[0] == 0 {
		t.Fatal("LARS did not update zero weights at all")
	}
}

func TestLARSNoDecayParamPlainSGD(t *testing.T) {
	p := nn.NewParam("bias", 2)
	p.NoDecay = true
	p.W.Data[0] = 1
	p.G.Data[0] = 0.5
	l := NewLARS([]*nn.Param{p}, DefaultLARSConfig())
	l.Step(0.1)
	want := 1 - 0.1*0.5
	if math.Abs(float64(p.W.Data[0])-want) > 1e-6 {
		t.Fatalf("bias update = %v, want %v (plain SGD)", p.W.Data[0], want)
	}
}

// TestLARSVsSGDLargeLR: with an absurdly large global rate, plain SGD blows
// weights up by orders of magnitude while LARS keeps the relative step
// bounded. This is the mechanism behind the paper's Figure 4.
func TestLARSVsSGDLargeLR(t *testing.T) {
	mk := func() *nn.Param { return makeParam(t, 5, 512) }

	sgdP := mk()
	before := sgdP.W.Norm2()
	NewSGD([]*nn.Param{sgdP}, SGDConfig{}).Step(100)
	sgdGrowth := sgdP.W.Norm2() / before

	larsP := mk()
	NewLARS([]*nn.Param{larsP}, DefaultLARSConfig()).Step(100)
	larsGrowth := larsP.W.Norm2() / before

	if sgdGrowth < 5 {
		t.Fatalf("SGD at lr=100 should explode, grew only %vx", sgdGrowth)
	}
	if larsGrowth > 2 {
		t.Fatalf("LARS at lr=100 should stay bounded, grew %vx", larsGrowth)
	}
}
