package opt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/rng"
)

func scalerParams(seed uint64, n int) []*nn.Param {
	r := rng.New(seed)
	p := nn.NewParam("w", n)
	for i := range p.G.Data {
		p.G.Data[i] = r.NormFloat32() * 1e-3
	}
	return []*nn.Param{p}
}

// TestLossScalerExactUnscale: for finite gradients, scaling by Scale() and
// then Update must restore the original bits exactly — power-of-two scales
// only shift exponents.
func TestLossScalerExactUnscale(t *testing.T) {
	params := scalerParams(1, 257)
	want := append([]float32(nil), params[0].G.Data...)
	s := NewLossScaler(0, 100)
	for i := range params[0].G.Data {
		params[0].G.Data[i] *= s.Scale()
	}
	if !s.Update(params) {
		t.Fatal("Update skipped a finite-gradient step")
	}
	for i, g := range params[0].G.Data {
		if math.Float32bits(g) != math.Float32bits(want[i]) {
			t.Fatalf("coord %d: unscale not exact: %v vs %v", i, g, want[i])
		}
	}
}

// TestLossScalerRecoversFromOverflow injects Inf and NaN gradients and
// checks the documented recovery: skip the step, halve the scale, leave
// gradients untouched; subsequent finite steps proceed at the reduced scale.
func TestLossScalerRecoversFromOverflow(t *testing.T) {
	s := NewLossScaler(DefaultLossScale, 3)
	for step, bad := range []float32{float32(math.Inf(1)), float32(math.NaN()), float32(math.Inf(-1))} {
		params := scalerParams(uint64(step+2), 64)
		params[0].G.Data[17] = bad
		before := append([]float32(nil), params[0].G.Data...)
		wantScale := s.Scale() / 2
		if s.Update(params) {
			t.Fatalf("step %d: Update accepted a non-finite gradient", step)
		}
		if s.Scale() != wantScale {
			t.Fatalf("step %d: scale %v after overflow, want %v", step, s.Scale(), wantScale)
		}
		for i := range before {
			if math.Float32bits(params[0].G.Data[i]) != math.Float32bits(before[i]) {
				t.Fatalf("step %d: overflow path modified gradient %d", step, i)
			}
		}
	}
	st := s.Stats()
	if st.Overflows != 3 || st.Stable != 0 {
		t.Fatalf("stats after 3 overflows: %+v", st)
	}
	// Recovery: finite steps at the reduced scale are accepted, and after
	// growthEvery of them the scale doubles again.
	reduced := s.Scale()
	for i := 0; i < 3; i++ {
		if !s.Update(scalerParams(uint64(i+9), 64)) {
			t.Fatalf("finite step %d skipped after recovery", i)
		}
	}
	if s.Scale() != reduced*2 {
		t.Fatalf("scale %v after growth interval, want %v", s.Scale(), reduced*2)
	}
	if s.Stats().Growths != 1 {
		t.Fatalf("growths = %d, want 1", s.Stats().Growths)
	}
}

// TestLossScalerDeterministic is the property test: any overflow/clean step
// sequence drives two independent scalers to identical scales and stats,
// and the final scale equals the replayed halvings/doublings — the behaviour
// a distributed trainer relies on to keep replicas in lockstep.
func TestLossScalerDeterministic(t *testing.T) {
	f := func(pattern []bool) bool {
		a := NewLossScaler(1024, 4)
		b := NewLossScaler(1024, 4)
		for step, overflow := range pattern {
			pa := scalerParams(uint64(step), 32)
			pb := scalerParams(uint64(step), 32)
			if overflow {
				pa[0].G.Data[0] = float32(math.Inf(1))
				pb[0].G.Data[0] = float32(math.Inf(1))
			}
			ra, rb := a.Update(pa), b.Update(pb)
			if ra != rb || ra == overflow {
				return false
			}
			for i := range pa[0].G.Data {
				if math.Float32bits(pa[0].G.Data[i]) != math.Float32bits(pb[0].G.Data[i]) {
					return false
				}
			}
		}
		return a.Stats() == b.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLossScalerNegativeControl: without injected non-finite values the
// overflow path must never fire — otherwise the recovery tests above would
// pass vacuously.
func TestLossScalerNegativeControl(t *testing.T) {
	s := NewLossScaler(0, 1000)
	for step := 0; step < 50; step++ {
		if !s.Update(scalerParams(uint64(step+100), 128)) {
			t.Fatalf("finite step %d reported overflow", step)
		}
	}
	if st := s.Stats(); st.Overflows != 0 || st.Stable != 50 {
		t.Fatalf("stats after clean run: %+v", st)
	}
}

// TestLossScalerState round-trips the checkpoint vector.
func TestLossScalerState(t *testing.T) {
	s := NewLossScaler(4096, 2)
	p := scalerParams(3, 16)
	p[0].G.Data[0] = float32(math.NaN())
	s.Update(p) // overflow: scale 2048
	s.Update(scalerParams(4, 16))
	s.Update(scalerParams(5, 16)) // growth: scale 4096

	r := NewLossScaler(0, 2)
	if err := r.SetState(s.State()); err != nil {
		t.Fatal(err)
	}
	if r.Stats() != s.Stats() || r.Scale() != s.Scale() {
		t.Fatalf("restored %+v, want %+v", r.Stats(), s.Stats())
	}
	if err := r.SetState([]float32{1, 2}); err == nil {
		t.Fatal("SetState accepted a short vector")
	}
	if err := r.SetState([]float32{99, 0, 0, 0}); err == nil {
		t.Fatal("SetState accepted an out-of-range scale")
	}
}
