package opt

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates a fixed set of parameters from their accumulated
// gradients. Step takes the learning rate explicitly so schedules stay
// decoupled from update rules.
type Optimizer interface {
	// Step applies one update using the given global learning rate. The
	// caller is responsible for zeroing gradients afterwards.
	Step(lr float64)
	// Name identifies the rule in experiment records.
	Name() string
}

// SGDConfig configures momentum SGD.
type SGDConfig struct {
	Momentum    float64 // typically 0.9 (Tables 5 and 7)
	WeightDecay float64 // typically 0.0005 for AlexNet, 0.0001 for ResNet
	// Nesterov applies the lookahead correction: the step uses the
	// momentum-extrapolated gradient m·v + lr·g instead of v alone. Off in
	// the paper's experiments; provided for ablations.
	Nesterov bool
}

// SGD is Caffe-style momentum SGD with L2 weight decay:
//
//	v ← m·v + lr·(∇w + λw)
//	w ← w − v            (heavy ball)
//	w ← w − (m·v + lr·g)  (Nesterov)
//
// Decay is skipped for parameters marked NoDecay (biases, BN affine).
type SGD struct {
	cfg      SGDConfig
	params   []*nn.Param
	velocity []*tensor.Tensor
}

// NewSGD builds a momentum-SGD optimizer over params.
func NewSGD(params []*nn.Param, cfg SGDConfig) *SGD {
	s := &SGD{cfg: cfg, params: params, velocity: make([]*tensor.Tensor, len(params))}
	for i, p := range params {
		s.velocity[i] = tensor.New(p.W.Shape...)
	}
	return s
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(lr float64) {
	for i, p := range s.params {
		v := s.velocity[i]
		wd := float32(s.cfg.WeightDecay)
		if p.NoDecay {
			wd = 0
		}
		m := float32(s.cfg.Momentum)
		lrf := float32(lr)
		vd, wdta, gd := v.Data, p.W.Data, p.G.Data
		if s.cfg.Nesterov {
			for j := range vd {
				grad := gd[j] + wd*wdta[j]
				vd[j] = m*vd[j] + lrf*grad
				wdta[j] -= m*vd[j] + lrf*grad
			}
		} else {
			for j := range vd {
				grad := gd[j] + wd*wdta[j]
				vd[j] = m*vd[j] + lrf*grad
				wdta[j] -= vd[j]
			}
		}
	}
}

// Velocity exposes the momentum buffer for tests.
func (s *SGD) Velocity(i int) *tensor.Tensor { return s.velocity[i] }
