package opt

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

func TestCosineEndpoints(t *testing.T) {
	s := Cosine{Base: 1.0, Min: 0.1}
	if got := s.LR(0, 100); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("cosine start = %v, want 1.0", got)
	}
	if got := s.LR(100, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("cosine end = %v, want 0.1", got)
	}
	if got := s.LR(50, 100); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("cosine midpoint = %v, want 0.55", got)
	}
}

func TestCosineMonotoneDecreasing(t *testing.T) {
	s := Cosine{Base: 2, Min: 0}
	prev := math.Inf(1)
	for step := 0; step <= 128; step++ {
		v := s.LR(step, 128)
		if v > prev+1e-12 {
			t.Fatalf("cosine increased at step %d", step)
		}
		prev = v
	}
}

func TestLARCClipCapsLocalRate(t *testing.T) {
	p := nn.NewParam("w", 128)
	r := rng.New(1)
	p.W.FillNormal(r, 0, 10)   // big weights...
	p.G.FillNormal(r, 0, 1e-6) // ...tiny gradient: raw trust ratio explodes
	unclipped := NewLARS([]*nn.Param{p}, LARSConfig{Trust: 0.05, Eps: 1e-12})
	unclipped.Step(0.1)
	if unclipped.TrustRatios()[0] <= 1 {
		t.Fatalf("setup should yield a huge raw ratio, got %v", unclipped.TrustRatios()[0])
	}

	q := nn.NewParam("w", 128)
	r2 := rng.New(1)
	q.W.FillNormal(r2, 0, 10)
	q.G.FillNormal(r2, 0, 1e-6)
	clipped := NewLARS([]*nn.Param{q}, LARSConfig{Trust: 0.05, Eps: 1e-12, Clip: 1})
	clipped.Step(0.1)
	if got := clipped.TrustRatios()[0]; got != 1 {
		t.Fatalf("clipped ratio = %v, want exactly 1", got)
	}
}

func TestLARCClipInactiveWhenBelowCap(t *testing.T) {
	mk := func(clip float64) []float64 {
		p := nn.NewParam("w", 64)
		r := rng.New(7)
		p.W.FillNormal(r, 0, 1)
		p.G.FillNormal(r, 0, 1)
		l := NewLARS([]*nn.Param{p}, LARSConfig{Trust: 0.01, Clip: clip})
		l.Step(0.1)
		return l.TrustRatios()
	}
	without := mk(0)
	with := mk(100) // far above any realistic ratio
	if without[0] != with[0] {
		t.Fatalf("inactive clip changed the ratio: %v vs %v", without[0], with[0])
	}
}

func TestMultiStepDrops(t *testing.T) {
	s := MultiStep{Base: 1, Milestones: []int{10, 20}, Gamma: 0.1}
	if s.LR(5, 30) != 1 {
		t.Fatal("rate before first milestone must be base")
	}
	if math.Abs(s.LR(15, 30)-0.1) > 1e-12 {
		t.Fatalf("rate after first milestone = %v", s.LR(15, 30))
	}
	if math.Abs(s.LR(25, 30)-0.01) > 1e-12 {
		t.Fatalf("rate after second milestone = %v", s.LR(25, 30))
	}
}

func TestScheduleStrings(t *testing.T) {
	for _, s := range []Schedule{
		Constant{Base: 1}, Poly{Base: 1, Power: 2}, Cosine{Base: 1},
		MultiStep{Base: 1}, Warmup{Inner: Constant{Base: 1}, WarmupSteps: 5},
	} {
		if s.String() == "" {
			t.Fatalf("%T has empty String()", s)
		}
	}
}
