package opt

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Loss-scaling constants. The scale is always an exact power of two so that
// scaling the loss and unscaling the gradients are bit-exact inverses for
// every finite value (multiplying by 2^k only shifts the exponent).
const (
	// DefaultLossScale is the initial scale when the caller passes 0. 2^16
	// comfortably lifts the small conv gradients of the micro models above
	// the binary16 subnormal drain (2^-24) without overflowing activations.
	DefaultLossScale = 65536.0
	// maxLossScale caps growth; beyond 2^24 scaled losses themselves start
	// flirting with binary16 infinity for ordinary loss magnitudes.
	maxLossScale = 1 << 24
	// minLossScale floors backoff so a pathological run degrades to
	// effectively-unscaled training instead of dividing gradients to zero.
	minLossScale = 1.0 / (1 << 24)
	// defaultGrowthEvery is how many consecutive overflow-free steps earn a
	// doubling of the scale.
	defaultGrowthEvery = 2000
)

// ScaleStats summarizes a LossScaler's life so far, for experiment records
// and step logs.
type ScaleStats struct {
	Scale     float64 // current loss scale (power of two)
	Overflows int     // steps skipped because a gradient hit Inf/NaN
	Growths   int     // times the scale doubled after a stable stretch
	Stable    int     // consecutive overflow-free steps since last change
}

// LossScaler implements dynamic loss scaling for mixed-precision training:
// the loss is multiplied by Scale() before backpropagation so small
// gradients survive binary16 storage, and Update afterwards either unscales
// the accumulated float32 gradients in place (dividing by the same power of
// two — bit-exact) or, if any gradient overflowed to Inf/NaN, zeros nothing,
// halves the scale, and tells the caller to skip the optimizer step.
//
// The grow-on-stable / halve-on-overflow policy is the standard dynamic
// recipe: after GrowthEvery consecutive good steps the scale doubles (up to
// a cap), so the scaler self-tunes to the largest safe scale without manual
// sweeps. The whole state is two numbers, exposed via State/SetState for
// checkpointing.
type LossScaler struct {
	scale       float64
	growthEvery int
	stats       ScaleStats
}

// NewLossScaler builds a scaler with the given initial scale (0 selects
// DefaultLossScale) and growth interval (0 selects defaultGrowthEvery).
// The initial scale is rounded to the nearest power of two to preserve the
// exact-unscaling invariant.
func NewLossScaler(scale float64, growthEvery int) *LossScaler {
	if scale == 0 {
		scale = DefaultLossScale
	}
	if scale < minLossScale || scale > maxLossScale || math.IsNaN(scale) {
		panic(fmt.Sprintf("opt: loss scale %v outside [%v, %v]", scale, minLossScale, float64(maxLossScale)))
	}
	scale = math.Exp2(math.Round(math.Log2(scale)))
	if growthEvery <= 0 {
		growthEvery = defaultGrowthEvery
	}
	s := &LossScaler{scale: scale, growthEvery: growthEvery}
	s.stats.Scale = scale
	return s
}

// Scale returns the factor to multiply the loss (equivalently, the seed
// gradient dL/dy) by before Backward.
func (s *LossScaler) Scale() float32 { return float32(s.scale) }

// Update inspects the accumulated gradients of params after a backward pass
// run under Scale(). If every value is finite it divides the gradients by
// the scale in place (exact: the scale is a power of two), advances the
// growth counter, and returns true: the optimizer step may proceed. If any
// gradient is Inf or NaN it leaves gradients untouched, halves the scale,
// and returns false: the caller must skip the step (and, in a distributed
// setting, skip the weight broadcast — weights are unchanged).
func (s *LossScaler) Update(params []*nn.Param) bool {
	for _, p := range params {
		for _, g := range p.G.Data {
			// A non-finite float32 has all exponent bits set.
			if math.Float32bits(g)&0x7f800000 == 0x7f800000 {
				s.stats.Overflows++
				s.stats.Stable = 0
				if half := s.scale / 2; half >= minLossScale {
					s.scale = half
				}
				s.stats.Scale = s.scale
				return false
			}
		}
	}
	inv := float32(1 / s.scale)
	if inv != 1 {
		for _, p := range params {
			for i := range p.G.Data {
				p.G.Data[i] *= inv
			}
		}
	}
	s.stats.Stable++
	if s.stats.Stable >= s.growthEvery {
		if grown := s.scale * 2; grown <= maxLossScale {
			s.scale = grown
			s.stats.Growths++
		}
		s.stats.Stable = 0
		s.stats.Scale = s.scale
	}
	return true
}

// Stats returns a snapshot of the scaler's counters.
func (s *LossScaler) Stats() ScaleStats { return s.stats }

// State serializes the scaler for checkpointing. The layout is a fixed
// float32 vector so it rides the existing tensor-section checkpoint codec.
func (s *LossScaler) State() []float32 {
	return []float32{
		float32(math.Log2(s.scale)),
		float32(s.stats.Overflows),
		float32(s.stats.Growths),
		float32(s.stats.Stable),
	}
}

// SetState restores a State() snapshot.
func (s *LossScaler) SetState(v []float32) error {
	if len(v) != 4 {
		return fmt.Errorf("opt: loss-scale state has %d values, want 4", len(v))
	}
	s.scale = math.Exp2(float64(v[0]))
	if s.scale < minLossScale || s.scale > maxLossScale || math.IsNaN(s.scale) {
		return fmt.Errorf("opt: restored loss scale %v outside [%v, %v]", s.scale, minLossScale, float64(maxLossScale))
	}
	s.stats = ScaleStats{
		Scale:     s.scale,
		Overflows: int(v[1]),
		Growths:   int(v[2]),
		Stable:    int(v[3]),
	}
	return nil
}
