package opt

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// LARSConfig configures Layer-wise Adaptive Rate Scaling.
type LARSConfig struct {
	Momentum    float64 // typically 0.9
	WeightDecay float64 // typically 0.0005
	// Trust is the LARS trust coefficient η; You/Gitman/Ginsburg use 0.001
	// for ImageNet-scale networks.
	Trust float64
	// Eps guards the trust-ratio denominator for zero gradients.
	Eps float64
	// Clip, when positive, caps the local rate at Clip — the "LARC"
	// refinement that followed the paper (clipping at 1 makes LARS never
	// more aggressive than plain SGD at the scheduled global rate). Zero
	// disables clipping, matching the original algorithm.
	Clip float64
}

// DefaultLARSConfig returns the paper's hyperparameters.
func DefaultLARSConfig() LARSConfig {
	return LARSConfig{Momentum: 0.9, WeightDecay: 0.0005, Trust: 0.001, Eps: 1e-9}
}

// LARS implements Layer-wise Adaptive Rate Scaling, the paper's core
// algorithm. Each layer (parameter tensor) ℓ gets its own local rate derived
// from the ratio of weight norm to gradient norm:
//
//	localLR = Trust · ‖w_ℓ‖ / (‖∇w_ℓ‖ + λ‖w_ℓ‖)
//	v_ℓ ← m·v_ℓ + lr·localLR·(∇w_ℓ + λ·w_ℓ)
//	w_ℓ ← w_ℓ − v_ℓ
//
// The intuition: with very large batches the linear scaling rule demands a
// global rate so large that layers whose ‖∇w‖/‖w‖ is big (early conv layers)
// diverge while others barely move. Normalizing the step size per layer
// keeps every layer's relative update ‖Δw‖/‖w‖ ≈ Trust·lr, which is what
// lets batch size reach 32K without accuracy loss (Figure 4, Table 7).
//
// Parameters marked NoDecay (biases, BN affine) fall back to plain momentum
// SGD without decay, mirroring the reference NVIDIA Caffe implementation.
type LARS struct {
	cfg      LARSConfig
	params   []*nn.Param
	velocity []*tensor.Tensor
	// ratios records the most recent local rate per parameter for
	// diagnostics (the LARS statistics the paper plots informally).
	ratios []float64
}

// NewLARS builds a LARS optimizer over params.
func NewLARS(params []*nn.Param, cfg LARSConfig) *LARS {
	if cfg.Trust == 0 {
		cfg.Trust = 0.001
	}
	if cfg.Eps == 0 {
		cfg.Eps = 1e-9
	}
	l := &LARS{cfg: cfg, params: params,
		velocity: make([]*tensor.Tensor, len(params)),
		ratios:   make([]float64, len(params)),
	}
	for i, p := range params {
		l.velocity[i] = tensor.New(p.W.Shape...)
	}
	return l
}

// Name implements Optimizer.
func (l *LARS) Name() string { return "lars" }

// Step implements Optimizer.
func (l *LARS) Step(lr float64) {
	for i, p := range l.params {
		v := l.velocity[i]
		m := float32(l.cfg.Momentum)
		if p.NoDecay {
			// Plain momentum SGD for bias/BN parameters.
			l.ratios[i] = 1
			lrf := float32(lr)
			vd, wd, gd := v.Data, p.W.Data, p.G.Data
			for j := range vd {
				vd[j] = m*vd[j] + lrf*gd[j]
				wd[j] -= vd[j]
			}
			continue
		}
		wNorm := p.W.Norm2()
		gNorm := p.G.Norm2()
		local := 1.0
		if wNorm > 0 {
			local = l.cfg.Trust * wNorm / (gNorm + l.cfg.WeightDecay*wNorm + l.cfg.Eps)
		}
		if l.cfg.Clip > 0 && local > l.cfg.Clip {
			local = l.cfg.Clip
		}
		l.ratios[i] = local
		scale := float32(lr * local)
		wd := float32(l.cfg.WeightDecay)
		vd, wdta, gd := v.Data, p.W.Data, p.G.Data
		for j := range vd {
			grad := gd[j] + wd*wdta[j]
			vd[j] = m*vd[j] + scale*grad
			wdta[j] -= vd[j]
		}
	}
}

// TrustRatios returns the per-parameter local rates from the last Step, in
// parameter order. Useful for diagnosing which layers LARS throttles.
func (l *LARS) TrustRatios() []float64 {
	out := make([]float64, len(l.ratios))
	copy(out, l.ratios)
	return out
}
