package opt

import (
	"math"
	"testing"

	"repro/internal/nn"
)

func TestNesterovDiffersFromHeavyBall(t *testing.T) {
	mk := func(nesterov bool) float32 {
		p := nn.NewParam("w", 1)
		p.W.Data[0] = 1
		s := NewSGD([]*nn.Param{p}, SGDConfig{Momentum: 0.9, Nesterov: nesterov})
		for i := 0; i < 3; i++ {
			p.G.Data[0] = 1
			s.Step(0.1)
		}
		return p.W.Data[0]
	}
	hb, nag := mk(false), mk(true)
	if hb == nag {
		t.Fatal("Nesterov must differ from heavy ball under momentum")
	}
	// Nesterov takes larger effective steps on a constant gradient
	// (lookahead adds m·v to each step).
	if nag >= hb {
		t.Fatalf("Nesterov (%v) should be ahead of heavy ball (%v) downhill", nag, hb)
	}
}

func TestNesterovFirstStep(t *testing.T) {
	// With zero initial velocity: v1 = lr·g; Nesterov step = m·v1 + lr·g.
	p := nn.NewParam("w", 1)
	p.W.Data[0] = 0
	p.G.Data[0] = 2
	s := NewSGD([]*nn.Param{p}, SGDConfig{Momentum: 0.5, Nesterov: true})
	s.Step(0.1)
	want := -(0.5*0.2 + 0.2)
	if math.Abs(float64(p.W.Data[0])-want) > 1e-6 {
		t.Fatalf("first Nesterov step = %v, want %v", p.W.Data[0], want)
	}
}

func TestNesterovZeroMomentumMatchesPlain(t *testing.T) {
	mk := func(nesterov bool) float32 {
		p := nn.NewParam("w", 1)
		p.W.Data[0] = 1
		s := NewSGD([]*nn.Param{p}, SGDConfig{Momentum: 0, Nesterov: nesterov})
		p.G.Data[0] = 0.5
		s.Step(0.1)
		return p.W.Data[0]
	}
	if mk(false) != mk(true) {
		t.Fatal("with zero momentum Nesterov must equal plain SGD")
	}
}

func TestNesterovConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = w²/2 (gradient w): both variants must converge, and
	// neither should oscillate to a worse point than it started.
	for _, nesterov := range []bool{false, true} {
		p := nn.NewParam("w", 1)
		p.W.Data[0] = 10
		s := NewSGD([]*nn.Param{p}, SGDConfig{Momentum: 0.9, Nesterov: nesterov})
		for i := 0; i < 300; i++ {
			p.G.Data[0] = p.W.Data[0]
			s.Step(0.05)
		}
		if math.Abs(float64(p.W.Data[0])) > 0.05 {
			t.Errorf("nesterov=%v: failed to converge, w=%v", nesterov, p.W.Data[0])
		}
	}
}
