// Package metrics provides the measurement utilities around training runs:
// confusion matrices, exponential smoothing for loss curves, and CSV export
// of per-epoch histories so the paper's figures can be re-plotted from the
// raw data of any run.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
)

// ConfusionMatrix counts predictions per (true class, predicted class).
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int64
}

// NewConfusionMatrix returns an empty k-class matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	m := &ConfusionMatrix{Classes: k, Counts: make([][]int64, k)}
	for i := range m.Counts {
		m.Counts[i] = make([]int64, k)
	}
	return m
}

// Observe records one prediction.
func (m *ConfusionMatrix) Observe(label, pred int) {
	m.Counts[label][pred]++
}

// ObserveBatch records a batch of predictions.
func (m *ConfusionMatrix) ObserveBatch(labels, preds []int) {
	if len(labels) != len(preds) {
		panic(fmt.Sprintf("metrics: %d labels vs %d predictions", len(labels), len(preds)))
	}
	for i := range labels {
		m.Observe(labels[i], preds[i])
	}
}

// Accuracy returns the trace fraction.
func (m *ConfusionMatrix) Accuracy() float64 {
	var correct, total int64
	for i := range m.Counts {
		for j, c := range m.Counts[i] {
			total += c
			if i == j {
				correct += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PerClassRecall returns the recall of each class (NaN when unseen).
func (m *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, m.Classes)
	for i := range m.Counts {
		var row int64
		for _, c := range m.Counts[i] {
			row += c
		}
		if row == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = float64(m.Counts[i][i]) / float64(row)
	}
	return out
}

// String renders the matrix with rows = true class.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, acc %.3f)\n", m.Classes, m.Accuracy())
	for i := range m.Counts {
		for j := range m.Counts[i] {
			fmt.Fprintf(&b, "%6d", m.Counts[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// EMA is an exponentially-weighted moving average for loss smoothing.
type EMA struct {
	Beta  float64 // retention, e.g. 0.98
	value float64
	steps int
}

// Update folds in one observation and returns the bias-corrected average.
func (e *EMA) Update(x float64) float64 {
	e.value = e.Beta*e.value + (1-e.Beta)*x
	e.steps++
	return e.Value()
}

// Value returns the bias-corrected current average (0 before any update).
func (e *EMA) Value() float64 {
	if e.steps == 0 {
		return 0
	}
	return e.value / (1 - math.Pow(e.Beta, float64(e.steps)))
}

// WriteHistoryCSV exports a training history as CSV with a header,
// suitable for replotting Figures 4/5/6.
func WriteHistoryCSV(w io.Writer, history []core.EpochStats) error {
	if _, err := fmt.Fprintln(w, "epoch,train_loss,test_acc,lr"); err != nil {
		return err
	}
	for _, e := range history {
		acc := ""
		if !math.IsNaN(e.TestAcc) {
			acc = fmt.Sprintf("%.6f", e.TestAcc)
		}
		if _, err := fmt.Fprintf(w, "%d,%.6f,%s,%.6f\n", e.Epoch, e.TrainLoss, acc, e.LR); err != nil {
			return err
		}
	}
	return nil
}

// CompareHistories returns the per-epoch accuracy gap (a minus b), padded
// with NaN where either run lacks an evaluation — the raw series behind
// Figure 4's two curves.
func CompareHistories(a, b []core.EpochStats) []float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := range out {
		av, bv := math.NaN(), math.NaN()
		if i < len(a) {
			av = a[i].TestAcc
		}
		if i < len(b) {
			bv = b[i].TestAcc
		}
		out[i] = av - bv
	}
	return out
}
