package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestConfusionMatrixAccuracy(t *testing.T) {
	m := NewConfusionMatrix(3)
	m.ObserveBatch([]int{0, 1, 2, 0}, []int{0, 1, 1, 0})
	if got := m.Accuracy(); got != 0.75 {
		t.Fatalf("accuracy = %v, want 0.75", got)
	}
	if m.Counts[2][1] != 1 {
		t.Fatal("misclassification not recorded")
	}
}

func TestPerClassRecall(t *testing.T) {
	m := NewConfusionMatrix(3)
	m.ObserveBatch([]int{0, 0, 1, 1}, []int{0, 1, 1, 1})
	rec := m.PerClassRecall()
	if rec[0] != 0.5 || rec[1] != 1 {
		t.Fatalf("recall = %v", rec)
	}
	if !math.IsNaN(rec[2]) {
		t.Fatal("unseen class should be NaN")
	}
}

func TestConfusionStringRenders(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Observe(0, 0)
	if !strings.Contains(m.String(), "acc 1.000") {
		t.Fatalf("render: %s", m.String())
	}
}

func TestObserveBatchMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConfusionMatrix(2).ObserveBatch([]int{0}, []int{0, 1})
}

func TestEMABiasCorrection(t *testing.T) {
	e := &EMA{Beta: 0.9}
	// First observation should be returned (almost) exactly thanks to
	// bias correction.
	if got := e.Update(5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("first EMA value = %v, want 5", got)
	}
	// A long constant stream converges to the constant.
	for i := 0; i < 200; i++ {
		e.Update(3)
	}
	if math.Abs(e.Value()-3) > 0.01 {
		t.Fatalf("EMA of constant 3 = %v", e.Value())
	}
}

func TestEMASmoothsNoise(t *testing.T) {
	e := &EMA{Beta: 0.95}
	vals := []float64{1, 9, 1, 9, 1, 9, 1, 9, 1, 9}
	var last float64
	for _, v := range vals {
		last = e.Update(v)
	}
	if last < 2 || last > 8 {
		t.Fatalf("EMA should land between the extremes, got %v", last)
	}
}

func TestWriteHistoryCSV(t *testing.T) {
	h := []core.EpochStats{
		{Epoch: 0, TrainLoss: 1.5, TestAcc: 0.25, LR: 0.1},
		{Epoch: 1, TrainLoss: 0.7, TestAcc: math.NaN(), LR: 0.05},
	}
	var b strings.Builder
	if err := WriteHistoryCSV(&b, h); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "epoch,train_loss,test_acc,lr\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "0,1.500000,0.250000,0.100000") {
		t.Fatalf("row 0 malformed: %q", out)
	}
	if !strings.Contains(out, "1,0.700000,,0.050000") {
		t.Fatalf("NaN accuracy should serialize empty: %q", out)
	}
}

func TestCompareHistories(t *testing.T) {
	a := []core.EpochStats{{TestAcc: 0.9}, {TestAcc: 0.95}}
	b := []core.EpochStats{{TestAcc: 0.5}}
	gap := CompareHistories(a, b)
	if len(gap) != 2 {
		t.Fatalf("gap length %d", len(gap))
	}
	if math.Abs(gap[0]-0.4) > 1e-12 {
		t.Fatalf("gap[0] = %v", gap[0])
	}
	if !math.IsNaN(gap[1]) {
		t.Fatal("missing b entry should give NaN")
	}
}
