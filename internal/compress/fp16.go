package compress

import "math"

// FP16 gradient exchange: IEEE 754 binary16 conversion, the milder
// compression point between full precision and 1-bit. The paper notes
// NVIDIA's 2-hour DGX-1 AlexNet result used half precision ("whose cost is
// half of the standard single-precision operation"); halving gradient bytes
// likewise halves the beta term of every allreduce.

// Float32ToHalf converts a float32 to its nearest binary16 representation
// (round-to-nearest-even), handling subnormals, infinities and NaN.
func Float32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f:
		// Overflow to infinity; preserve NaN payload bit.
		if int32(bits>>23&0xff) == 0xff && mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp <= 0:
		// Subnormal or zero in half precision.
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// Round to nearest even.
		rem := mant & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++
		}
		return half
	}
}

// HalfToFloat32 converts a binary16 value back to float32 exactly.
func HalfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// EncodeFP16 packs a float32 slice to binary16.
func EncodeFP16(src []float32, dst []uint16) {
	if len(dst) != len(src) {
		panic("compress: EncodeFP16 length mismatch")
	}
	for i, v := range src {
		dst[i] = Float32ToHalf(v)
	}
}

// DecodeFP16 unpacks binary16 back to float32.
func DecodeFP16(src []uint16, dst []float32) {
	if len(dst) != len(src) {
		panic("compress: DecodeFP16 length mismatch")
	}
	for i, v := range src {
		dst[i] = HalfToFloat32(v)
	}
}

// FP16RoundTripError returns the max relative error introduced by one
// encode/decode pass over src (diagnostic; ~2^-11 for normal values).
func FP16RoundTripError(src []float32) float64 {
	var worst float64
	for _, v := range src {
		r := HalfToFloat32(Float32ToHalf(v))
		denom := math.Abs(float64(v))
		if denom < 1e-30 {
			continue
		}
		e := math.Abs(float64(r-v)) / denom
		if e > worst {
			worst = e
		}
	}
	return worst
}
