package compress

import (
	"math"

	"repro/internal/kernel"
)

// FP16 gradient exchange: IEEE 754 binary16 conversion, the milder
// compression point between full precision and 1-bit. The paper notes
// NVIDIA's 2-hour DGX-1 AlexNet result used half precision ("whose cost is
// half of the standard single-precision operation"); halving gradient bytes
// likewise halves the beta term of every allreduce.
//
// The conversion arithmetic lives in internal/kernel (it is shared with the
// mixed-precision compute path); this package re-exports it under the codec's
// historical names. The kernel converters use branch-free magic-number
// arithmetic that is several times faster than the classic switch-based
// conversion — the tests in internal/kernel pin them to the same
// round-to-nearest-even semantics over all 2^16 halves and a dense probe of
// the float32 rounding boundaries.

// Float32ToHalf converts a float32 to its nearest binary16 representation
// (round-to-nearest-even), handling subnormals, infinities and NaN.
func Float32ToHalf(f float32) uint16 { return kernel.Float32ToHalf(f) }

// HalfToFloat32 converts a binary16 value back to float32 exactly.
func HalfToFloat32(h uint16) float32 { return kernel.HalfToFloat32(h) }

// EncodeFP16 packs a float32 slice to binary16.
func EncodeFP16(src []float32, dst []uint16) {
	if len(dst) != len(src) {
		panic("compress: EncodeFP16 length mismatch")
	}
	kernel.EncodeHalf(dst, src)
}

// DecodeFP16 unpacks binary16 back to float32.
func DecodeFP16(src []uint16, dst []float32) {
	if len(dst) != len(src) {
		panic("compress: DecodeFP16 length mismatch")
	}
	kernel.DecodeHalf(dst, src)
}

// FP16RoundTripError returns the max relative error introduced by one
// encode/decode pass over src (diagnostic; ~2^-11 for normal values).
func FP16RoundTripError(src []float32) float64 {
	var worst float64
	for _, v := range src {
		r := HalfToFloat32(Float32ToHalf(v))
		denom := math.Abs(float64(v))
		if denom < 1e-30 {
			continue
		}
		e := math.Abs(float64(r-v)) / denom
		if e > worst {
			worst = e
		}
	}
	return worst
}
