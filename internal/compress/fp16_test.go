package compress

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHalfExactValues(t *testing.T) {
	cases := map[float32]uint16{
		0:     0x0000,
		1:     0x3c00,
		-1:    0xbc00,
		2:     0x4000,
		0.5:   0x3800,
		65504: 0x7bff, // largest finite half
	}
	for f, want := range cases {
		if got := Float32ToHalf(f); got != want {
			t.Errorf("Float32ToHalf(%v) = %#04x, want %#04x", f, got, want)
		}
		if back := HalfToFloat32(want); back != f {
			t.Errorf("HalfToFloat32(%#04x) = %v, want %v", want, back, f)
		}
	}
}

func TestHalfSpecials(t *testing.T) {
	inf := float32(math.Inf(1))
	if got := HalfToFloat32(Float32ToHalf(inf)); !math.IsInf(float64(got), 1) {
		t.Errorf("+Inf roundtrip = %v", got)
	}
	ninf := float32(math.Inf(-1))
	if got := HalfToFloat32(Float32ToHalf(ninf)); !math.IsInf(float64(got), -1) {
		t.Errorf("-Inf roundtrip = %v", got)
	}
	nan := float32(math.NaN())
	if got := HalfToFloat32(Float32ToHalf(nan)); !math.IsNaN(float64(got)) {
		t.Errorf("NaN roundtrip = %v", got)
	}
	// Overflow beyond half range saturates to infinity.
	if got := HalfToFloat32(Float32ToHalf(1e10)); !math.IsInf(float64(got), 1) {
		t.Errorf("1e10 should overflow to +Inf, got %v", got)
	}
	// Underflow to zero below the smallest subnormal.
	if got := HalfToFloat32(Float32ToHalf(1e-10)); got != 0 {
		t.Errorf("1e-10 should flush to 0, got %v", got)
	}
}

func TestHalfSubnormals(t *testing.T) {
	// Smallest positive half subnormal: 2^-24.
	tiny := float32(math.Pow(2, -24))
	h := Float32ToHalf(tiny)
	if h != 0x0001 {
		t.Fatalf("2^-24 = %#04x, want 0x0001", h)
	}
	if back := HalfToFloat32(h); back != tiny {
		t.Fatalf("subnormal roundtrip = %v, want %v", back, tiny)
	}
}

// Property: every half value roundtrips float32->half->float32 exactly when
// starting from a half-representable value.
func TestHalfIdempotenceProperty(t *testing.T) {
	f := func(bits uint16) bool {
		v := HalfToFloat32(bits)
		if math.IsNaN(float64(v)) {
			return math.IsNaN(float64(HalfToFloat32(Float32ToHalf(v))))
		}
		return HalfToFloat32(Float32ToHalf(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// Property: relative rounding error for normal-range values is within the
// binary16 unit roundoff 2^-11.
func TestHalfRelativeErrorProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		v := (r.Float32()*2 - 1) * 100
		if v == 0 {
			return true
		}
		back := HalfToFloat32(Float32ToHalf(v))
		rel := math.Abs(float64(back-v)) / math.Abs(float64(v))
		return rel <= math.Pow(2, -11)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeFP16Slices(t *testing.T) {
	r := rng.New(1)
	src := make([]float32, 1000)
	for i := range src {
		src[i] = r.NormFloat32()
	}
	enc := make([]uint16, 1000)
	dec := make([]float32, 1000)
	EncodeFP16(src, enc)
	DecodeFP16(enc, dec)
	if err := FP16RoundTripError(src); err > math.Pow(2, -11)+1e-9 {
		t.Fatalf("roundtrip relative error %v too large", err)
	}
	for i := range src {
		if math.Abs(float64(dec[i]-src[i])) > 1e-3*(1+math.Abs(float64(src[i]))) {
			t.Fatalf("slice roundtrip diverged at %d: %v vs %v", i, dec[i], src[i])
		}
	}
}

func TestFP16MonotoneOnPositives(t *testing.T) {
	// Rounding must preserve (non-strict) ordering.
	prev := uint16(0)
	for v := float32(0.001); v < 1000; v *= 1.1 {
		h := Float32ToHalf(v)
		if h < prev {
			t.Fatalf("half encoding not monotone at %v", v)
		}
		prev = h
	}
}

// BenchmarkFP16Codec measures the codec's batched conversion throughput —
// the kernel's magic-number converters versus a per-element loop over the
// exported scalar API (what the codec did before the batched delegation).
func BenchmarkFP16Codec(b *testing.B) {
	const n = 1 << 16
	src := make([]float32, n)
	r := rng.New(11)
	for i := range src {
		src[i] = r.NormFloat32()
	}
	half := make([]uint16, n)
	dst := make([]float32, n)
	b.Run("batched", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			EncodeFP16(src, half)
			DecodeFP16(half, dst)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			for j, v := range src {
				half[j] = Float32ToHalf(v)
			}
			for j, h := range half {
				dst[j] = HalfToFloat32(h)
			}
		}
	})
}
