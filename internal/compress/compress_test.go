package compress

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestEncodeDecodeSigns(t *testing.T) {
	z := NewQuantizer(4)
	q := z.Encode([]float32{1, -2, 3, -4})
	out := make([]float32, 4)
	q.Decode(out)
	if out[0] <= 0 || out[2] <= 0 {
		t.Fatal("positive coordinates must decode positive")
	}
	if out[1] >= 0 || out[3] >= 0 {
		t.Fatal("negative coordinates must decode negative")
	}
	// Scales: mean(|pos|)=2, mean(|neg|)=3.
	if q.PosScale != 2 || q.NegScale != 3 {
		t.Fatalf("scales = %v/%v, want 2/3", q.PosScale, q.NegScale)
	}
}

func TestCompressionRatioNear32(t *testing.T) {
	z := NewQuantizer(10000)
	r := rng.New(1)
	g := make([]float32, 10000)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	q := z.Encode(g)
	if ratio := q.CompressionRatio(); ratio < 28 || ratio > 32.5 {
		t.Fatalf("compression ratio %v, want ~32", ratio)
	}
}

// Property: with error feedback, the transmitted reconstruction plus the
// residual equals the effective gradient exactly — no information is lost,
// only delayed.
func TestErrorFeedbackConservesGradient(t *testing.T) {
	f := func(seed uint64, nn8 uint8) bool {
		n := int(nn8%100) + 1
		r := rng.New(seed)
		g := make([]float32, n)
		for i := range g {
			g[i] = r.NormFloat32()
		}
		z := NewQuantizer(n)
		q := z.Encode(g)
		recon := make([]float32, n)
		q.Decode(recon)
		// g (+ zero initial residual) == recon + residual'
		for i := range g {
			if math.Abs(float64(g[i]-(recon[i]+z.residual[i]))) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualAccumulatesOverSteps(t *testing.T) {
	// A constant tiny gradient below the quantization scale must still be
	// applied eventually thanks to error feedback: the residual builds up
	// until the sign flips transmit it.
	const n = 64
	z := NewQuantizer(n)
	g := make([]float32, n)
	for i := range g {
		g[i] = 0.01
	}
	g[0] = 1 // one big coordinate dominates the positive scale
	var applied float64
	recon := make([]float32, n)
	for step := 0; step < 50; step++ {
		q := z.Encode(g)
		q.Decode(recon)
		applied += float64(recon[1])
	}
	// Coordinate 1's true cumulative gradient is 0.5; the transmitted sum
	// must track it (not be stuck at 50x the large scale or at 0).
	if math.Abs(applied-0.5) > 0.3 {
		t.Fatalf("error feedback failed: applied %v, want ~0.5", applied)
	}
}

func TestWithoutErrorFeedbackBias(t *testing.T) {
	// Ablation: without error feedback the small coordinate is swamped by
	// the shared positive scale every step and the applied sum runs away.
	const n = 64
	z := NewQuantizer(n)
	z.DisableErrorFeedback = true
	g := make([]float32, n)
	for i := range g {
		g[i] = 0.01
	}
	g[0] = 1
	var applied float64
	recon := make([]float32, n)
	for step := 0; step < 50; step++ {
		q := z.Encode(g)
		q.Decode(recon)
		applied += float64(recon[1])
	}
	if math.Abs(applied-0.5) < 0.3 {
		t.Fatalf("expected visible bias without error feedback, applied %v", applied)
	}
}

func TestCompressedAllreduceMean(t *testing.T) {
	const n, p = 1024, 4
	grads := make([][]float32, p)
	quants := make([]*Quantizer, p)
	r := rng.New(3)
	exact := make([]float64, n)
	for w := 0; w < p; w++ {
		grads[w] = make([]float32, n)
		quants[w] = NewQuantizer(n)
		for i := range grads[w] {
			grads[w][i] = r.NormFloat32()
			exact[i] += float64(grads[w][i]) / p
		}
	}
	mean, exactBytes, wireBytes := CompressedAllreduce(grads, quants)
	if exactBytes != 4*n*p {
		t.Fatalf("exact bytes %d", exactBytes)
	}
	if float64(wireBytes) > float64(exactBytes)/20 {
		t.Fatalf("wire bytes %d not ~32x smaller than %d", wireBytes, exactBytes)
	}
	// One-step reconstruction is coarse, but the sign structure should
	// correlate strongly with the exact mean direction.
	var dot, normA, normB float64
	for i := range mean {
		dot += float64(mean[i]) * exact[i]
		normA += float64(mean[i]) * float64(mean[i])
		normB += exact[i] * exact[i]
	}
	cos := dot / math.Sqrt(normA*normB)
	if cos < 0.5 {
		t.Fatalf("compressed mean decorrelated from exact mean: cos %v", cos)
	}
}

// TestTrainingWithCompressionConverges trains a small model with 1-bit
// compressed gradients and checks it reaches a loss close to exact SGD —
// the Seide et al. result, and the reason compression is a viable
// alternative lever on the paper's communication bottleneck.
func TestTrainingWithCompressionConverges(t *testing.T) {
	mk := func() (*nn.Network, *tensor.Tensor, []int) {
		net := models.NewMLP(models.MicroConfig{Classes: 2, InC: 1, InH: 4, InW: 4, Width: 4, Seed: 1})
		r := rng.New(2)
		x := tensor.RandNormal(r, 1, 32, 1, 4, 4)
		labels := make([]int, 32)
		for i := range labels {
			labels[i] = i % 2
			x.Data[i*16] += float32(labels[i]) * 2
		}
		return net, x, labels
	}

	train := func(compressed bool) float64 {
		net, x, labels := mk()
		nParams := net.NumParams()
		z := NewQuantizer(nParams)
		flat := make([]float32, nParams)
		recon := make([]float32, nParams)
		var loss nn.SoftmaxCrossEntropy
		var final float64
		for step := 0; step < 120; step++ {
			logits := net.Forward(x, true)
			final = loss.Forward(logits, labels)
			net.ZeroGrad()
			net.Backward(loss.Backward())
			if compressed {
				off := 0
				for _, p := range net.Params() {
					copy(flat[off:], p.G.Data)
					off += p.Numel()
				}
				q := z.Encode(flat)
				q.Decode(recon)
				off = 0
				for _, p := range net.Params() {
					copy(p.G.Data, recon[off:off+p.Numel()])
					off += p.Numel()
				}
			}
			for _, p := range net.Params() {
				p.W.Axpy(-0.05, p.G)
			}
		}
		return final
	}

	exact := train(false)
	comp := train(true)
	t.Logf("exact loss %v, 1-bit loss %v", exact, comp)
	if exact > 0.2 {
		t.Fatalf("exact baseline failed to converge: %v", exact)
	}
	if comp > exact+0.3 {
		t.Fatalf("compressed training too far behind exact: %v vs %v", comp, exact)
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQuantizer(4).Encode(make([]float32, 5))
}
