// Package compress implements 1-bit gradient quantization with error
// feedback (Seide et al. 2014, "1-bit stochastic gradient descent", cited
// in the paper's related work as the other lever on the communication
// bottleneck: where LARS reduces the *number* of gradient exchanges by
// enabling huge batches, 1-bit SGD shrinks each exchange ~32x).
//
// The scheme: add the residual carried over from the previous step, send
// only the sign of each coordinate plus two per-tensor scales (the mean
// magnitude of the positive and negative coordinates), and keep the
// quantization error as the next step's residual. Error feedback is what
// makes the scheme converge — the tests demonstrate both that and the
// failure mode without it.
package compress

import (
	"fmt"
	"math"

	"repro/internal/kernel"
)

// OneBit is a quantized gradient: one bit per coordinate plus two scales.
type OneBit struct {
	// Bits holds one sign bit per coordinate, LSB-first within each word.
	Bits []uint64
	// PosScale and NegScale are the reconstruction magnitudes for
	// positive (bit=1) and negative (bit=0) coordinates.
	PosScale float32
	NegScale float32
	// N is the coordinate count.
	N int
}

// Bytes returns the wire size of the quantized gradient.
func (q *OneBit) Bytes() int64 {
	return int64(len(q.Bits))*8 + 8 /* two float32 scales */ + 4 /* length */
}

// CompressionRatio returns raw float32 bytes divided by wire bytes.
func (q *OneBit) CompressionRatio() float64 {
	return float64(4*q.N) / float64(q.Bytes())
}

// Quantizer carries the per-tensor error-feedback residual between steps.
type Quantizer struct {
	residual []float32
	// DisableErrorFeedback drops the residual (for ablation only).
	DisableErrorFeedback bool
}

// NewQuantizer returns a quantizer for gradients of n coordinates.
func NewQuantizer(n int) *Quantizer {
	return &Quantizer{residual: make([]float32, n)}
}

// Encode quantizes grad (plus the carried residual) to one bit per
// coordinate and updates the residual with the quantization error. The
// input slice is not modified.
func (z *Quantizer) Encode(grad []float32) *OneBit {
	if len(grad) != len(z.residual) {
		panic(fmt.Sprintf("compress: gradient has %d coords, quantizer built for %d", len(grad), len(z.residual)))
	}
	n := len(grad)
	q := &OneBit{Bits: make([]uint64, (n+63)/64), N: n}
	// First pass: effective value and scale accumulation.
	var posSum, negSum float64
	var posCount, negCount int
	eff := make([]float32, n)
	for i, g := range grad {
		v := g
		if !z.DisableErrorFeedback {
			v += z.residual[i]
		}
		eff[i] = v
		if v >= 0 {
			posSum += float64(v)
			posCount++
		} else {
			negSum += float64(-v)
			negCount++
		}
	}
	if posCount > 0 {
		q.PosScale = float32(posSum / float64(posCount))
	}
	if negCount > 0 {
		q.NegScale = float32(negSum / float64(negCount))
	}
	// Second pass: bits and residual update.
	for i, v := range eff {
		var recon float32
		if v >= 0 {
			q.Bits[i/64] |= 1 << (uint(i) % 64)
			recon = q.PosScale
		} else {
			recon = -q.NegScale
		}
		if z.DisableErrorFeedback {
			z.residual[i] = 0
		} else {
			z.residual[i] = v - recon
		}
	}
	return q
}

// Decode reconstructs the quantized gradient into dst (len N).
func (q *OneBit) Decode(dst []float32) {
	if len(dst) != q.N {
		panic(fmt.Sprintf("compress: decode into %d coords, want %d", len(dst), q.N))
	}
	for i := range dst {
		if q.Bits[i/64]&(1<<(uint(i)%64)) != 0 {
			dst[i] = q.PosScale
		} else {
			dst[i] = -q.NegScale
		}
	}
}

// Residual returns the carried error-feedback residual. The slice is the
// quantizer's live state — copy it before mutating or serializing lazily.
func (z *Quantizer) Residual() []float32 { return z.residual }

// SetResidual overwrites the carried residual (copying r), restoring
// checkpointed error-feedback state. The length must match the quantizer's.
func (z *Quantizer) SetResidual(r []float32) {
	if len(r) != len(z.residual) {
		panic(fmt.Sprintf("compress: residual has %d coords, quantizer built for %d", len(r), len(z.residual)))
	}
	copy(z.residual, r)
}

// ResidualNorm returns the L2 norm of the carried error (diagnostic).
func (z *Quantizer) ResidualNorm() float64 {
	var s float64
	for _, v := range z.residual {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// CompressedAllreduce performs a parameter-server style gradient exchange
// with 1-bit compression in both directions: each worker's gradient is
// quantized (with that worker's quantizer), the master sums the decoded
// reconstructions through the fixed-tree kernel summation (so the mean is
// a pure function of the worker set, independent of any accumulation
// order the caller might otherwise impose), and the mean is returned along
// with the exact and compressed byte counts. Buffers must share a length
// equal to the quantizers'.
func CompressedAllreduce(grads [][]float32, quantizers []*Quantizer) (mean []float32, exactBytes, wireBytes int64) {
	if len(grads) != len(quantizers) {
		panic("compress: one quantizer per worker required")
	}
	n := len(grads[0])
	recons := make([][]float32, len(grads))
	for w, g := range grads {
		q := quantizers[w].Encode(g)
		recons[w] = make([]float32, n)
		q.Decode(recons[w])
		exactBytes += int64(4 * n)
		wireBytes += q.Bytes()
	}
	mean = make([]float32, n)
	scales := make([]float32, len(grads))
	inv := 1 / float32(len(grads))
	for w := range scales {
		scales[w] = inv
	}
	kernel.PairwiseAccumulate(mean, recons, scales)
	return mean, exactBytes, wireBytes
}
