package data

import (
	"fmt"
	"strconv"
	"strings"
)

// ResolutionPhase is one contiguous epoch range trained at a fixed
// resolution. From is inclusive; To is exclusive, with To == -1 meaning
// open-ended (the schedule's final phase).
type ResolutionPhase struct {
	H, W     int
	From, To int
}

// Epochs returns the phase length clipped to a total epoch budget, zero if
// the phase starts at or beyond the budget.
func (p ResolutionPhase) Epochs(budget int) int {
	to := p.To
	if to < 0 || to > budget {
		to = budget
	}
	if to <= p.From {
		return 0
	}
	return to - p.From
}

// ResolutionSchedule is a per-epoch (H, W) plan: the progressive-resolution
// curriculum of the ENTR hypothesis, applied by the loader and trainer when
// batches are materialized. Phases tile the epoch axis contiguously from 0
// with an open-ended final phase, so At is total — every replica asks for
// the same epoch and therefore switches resolution in lockstep, which keeps
// shard/span logic and bit-identity untouched.
type ResolutionSchedule struct {
	phases []ResolutionPhase
}

// FixedResolution is the trivial single-phase schedule: every epoch at h×w.
func FixedResolution(h, w int) *ResolutionSchedule {
	if h <= 0 || w <= 0 {
		panic(fmt.Sprintf("data: FixedResolution(%d,%d) must be positive", h, w))
	}
	return &ResolutionSchedule{phases: []ResolutionPhase{{H: h, W: w, From: 0, To: -1}}}
}

// NewResolutionSchedule builds a schedule from explicit phases, validating
// the tiling contract: first phase starts at epoch 0, each phase starts
// where the previous ends, only the final phase is open-ended (To == -1),
// and every resolution is positive.
func NewResolutionSchedule(phases []ResolutionPhase) (*ResolutionSchedule, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("data: resolution schedule needs at least one phase")
	}
	next := 0
	for i, p := range phases {
		if p.H <= 0 || p.W <= 0 {
			return nil, fmt.Errorf("data: resolution schedule phase %d: resolution %dx%d must be positive", i, p.H, p.W)
		}
		if p.From != next {
			return nil, fmt.Errorf("data: resolution schedule phase %d starts at epoch %d, want %d (phases must tile contiguously from 0)", i, p.From, next)
		}
		if i == len(phases)-1 {
			if p.To != -1 {
				return nil, fmt.Errorf("data: resolution schedule's final phase must be open-ended")
			}
		} else {
			if p.To <= p.From {
				return nil, fmt.Errorf("data: resolution schedule phase %d is empty (epochs [%d,%d))", i, p.From, p.To)
			}
			next = p.To
		}
	}
	return &ResolutionSchedule{phases: append([]ResolutionPhase(nil), phases...)}, nil
}

// ParseResolutionSchedule parses the cmd/train schedule syntax: a
// comma-separated list of HxW@range phases where range is an inclusive
// epoch span "a-b" or an open tail "a+". A bare "HxW" is shorthand for the
// whole run. Example (the ENTR curriculum): "12x12@0-3,24x24@4+" trains
// epochs 0–3 at 12×12 and every later epoch at 24×24.
func ParseResolutionSchedule(s string) (*ResolutionSchedule, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) == 1 && !strings.Contains(parts[0], "@") {
		h, w, err := parseHxW(parts[0])
		if err != nil {
			return nil, err
		}
		return FixedResolution(h, w), nil
	}
	phases := make([]ResolutionPhase, 0, len(parts))
	for _, part := range parts {
		res, span, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("data: resolution phase %q: want HxW@range", part)
		}
		h, w, err := parseHxW(res)
		if err != nil {
			return nil, err
		}
		p := ResolutionPhase{H: h, W: w}
		switch {
		case strings.HasSuffix(span, "+"):
			from, err := strconv.Atoi(strings.TrimSuffix(span, "+"))
			if err != nil {
				return nil, fmt.Errorf("data: resolution phase %q: bad epoch %q", part, span)
			}
			p.From, p.To = from, -1
		case strings.Contains(span, "-"):
			a, b, _ := strings.Cut(span, "-")
			from, err1 := strconv.Atoi(a)
			to, err2 := strconv.Atoi(b)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("data: resolution phase %q: bad epoch range %q", part, span)
			}
			p.From, p.To = from, to+1 // inclusive syntax, exclusive storage
		default:
			epoch, err := strconv.Atoi(span)
			if err != nil {
				return nil, fmt.Errorf("data: resolution phase %q: bad epoch range %q", part, span)
			}
			p.From, p.To = epoch, epoch+1
		}
		phases = append(phases, p)
	}
	return NewResolutionSchedule(phases)
}

func parseHxW(s string) (int, int, error) {
	a, b, ok := strings.Cut(strings.TrimSpace(s), "x")
	if !ok {
		return 0, 0, fmt.Errorf("data: resolution %q: want HxW", s)
	}
	h, err1 := strconv.Atoi(a)
	w, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || h <= 0 || w <= 0 {
		return 0, 0, fmt.Errorf("data: resolution %q: want positive HxW", s)
	}
	return h, w, nil
}

// At returns the (H, W) the schedule assigns to an epoch. Total for any
// epoch ≥ 0 by the tiling contract.
func (s *ResolutionSchedule) At(epoch int) (h, w int) {
	for _, p := range s.phases {
		if epoch >= p.From && (p.To < 0 || epoch < p.To) {
			return p.H, p.W
		}
	}
	// Unreachable for epoch ≥ 0 on a validated schedule; clamp negatives
	// to the first phase.
	return s.phases[0].H, s.phases[0].W
}

// Phases returns a copy of the schedule's phases.
func (s *ResolutionSchedule) Phases() []ResolutionPhase {
	return append([]ResolutionPhase(nil), s.phases...)
}

// PhasesIn clips the schedule to a finite epoch budget, dropping phases
// beyond it and closing the final phase at the budget. This is the form the
// cluster simulator prices.
func (s *ResolutionSchedule) PhasesIn(epochs int) []ResolutionPhase {
	var out []ResolutionPhase
	for _, p := range s.phases {
		if n := p.Epochs(epochs); n > 0 {
			p.To = p.From + n
			out = append(out, p)
		}
	}
	return out
}

// Constant reports whether the schedule uses a single resolution.
func (s *ResolutionSchedule) Constant() bool {
	for _, p := range s.phases[1:] {
		if p.H != s.phases[0].H || p.W != s.phases[0].W {
			return false
		}
	}
	return true
}

// String renders the schedule back in the parse syntax.
func (s *ResolutionSchedule) String() string {
	if len(s.phases) == 1 {
		return fmt.Sprintf("%dx%d", s.phases[0].H, s.phases[0].W)
	}
	var b strings.Builder
	for i, p := range s.phases {
		if i > 0 {
			b.WriteByte(',')
		}
		if p.To < 0 {
			fmt.Fprintf(&b, "%dx%d@%d+", p.H, p.W, p.From)
		} else {
			fmt.Fprintf(&b, "%dx%d@%d-%d", p.H, p.W, p.From, p.To-1)
		}
	}
	return b.String()
}
