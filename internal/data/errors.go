package data

import "fmt"

// ShapeError is the typed error returned when a dataset's stored geometry
// cannot satisfy a requested view: a gather index outside [0, N), an image
// tensor that is not [N,C,H,W], an image/label length skew, or an invalid
// resize target. Callers distinguish it with errors.As; the zero Index is
// -1 when the failure is not tied to one example.
type ShapeError struct {
	Op     string // failing operation: "Gather", "GatherAt", "Subset", ...
	Index  int    // offending example index, -1 if not index-related
	Detail string
}

func (e *ShapeError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("data: %s: index %d: %s", e.Op, e.Index, e.Detail)
	}
	return fmt.Sprintf("data: %s: %s", e.Op, e.Detail)
}

func shapeErrf(op string, index int, format string, args ...any) *ShapeError {
	return &ShapeError{Op: op, Index: index, Detail: fmt.Sprintf(format, args...)}
}
