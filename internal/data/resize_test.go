package data

import (
	"math"
	"testing"

	"repro/internal/kernel"
)

func TestParseResolutionSchedule(t *testing.T) {
	s, err := ParseResolutionSchedule("12x12@0-3,24x24@4+")
	if err != nil {
		t.Fatal(err)
	}
	for epoch, want := range map[int][2]int{0: {12, 12}, 3: {12, 12}, 4: {24, 24}, 100: {24, 24}} {
		h, w := s.At(epoch)
		if h != want[0] || w != want[1] {
			t.Errorf("At(%d) = %dx%d, want %dx%d", epoch, h, w, want[0], want[1])
		}
	}
	if got, want := s.String(), "12x12@0-3,24x24@4+"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if s.Constant() {
		t.Error("two-resolution schedule reported Constant")
	}

	fixed, err := ParseResolutionSchedule("24x16")
	if err != nil {
		t.Fatal(err)
	}
	if h, w := fixed.At(7); h != 24 || w != 16 {
		t.Errorf("bare HxW schedule At(7) = %dx%d, want 24x16", h, w)
	}
	if !fixed.Constant() {
		t.Error("single-resolution schedule not Constant")
	}

	three, err := ParseResolutionSchedule("8x8@0-1,12x12@2-4,24x24@5+")
	if err != nil {
		t.Fatal(err)
	}
	phases := three.PhasesIn(4)
	if len(phases) != 2 || phases[0].Epochs(4) != 2 || phases[1].Epochs(4) != 2 {
		t.Errorf("PhasesIn(4) = %+v, want two 2-epoch phases", phases)
	}

	for _, bad := range []string{
		"",
		"12x12@1-3,24x24@4+",  // does not start at 0
		"12x12@0-3,24x24@5+",  // gap
		"12x12@0-3,24x24@4-8", // final phase not open
		"12x12@0-3",           // final phase not open
		"0x12@0+",             // non-positive
		"12y12@0+",            // bad syntax
		"12x12@x+",            // bad epoch
	} {
		if _, err := ParseResolutionSchedule(bad); err == nil {
			t.Errorf("ParseResolutionSchedule(%q) accepted, want error", bad)
		}
	}
}

// GatherAt at native resolution is byte-for-byte Gather; at other
// resolutions it matches resizing each channel plane with the kernel
// directly, for a non-square dataset.
func TestGatherAtMatchesKernel(t *testing.T) {
	cfg := smallCfg()
	cfg.H, cfg.W = 24, 16
	s := GenerateSynth(cfg)
	idx := []int{3, 1, 4}

	native, labels, err := s.Train.GatherAt(idx, 24, 16)
	if err != nil {
		t.Fatal(err)
	}
	plain, plainLabels := s.Train.MustGather(idx)
	for i := range native.Data {
		if math.Float32bits(native.Data[i]) != math.Float32bits(plain.Data[i]) {
			t.Fatalf("native-resolution GatherAt diverges from Gather at %d", i)
		}
	}
	for i := range labels {
		if labels[i] != plainLabels[i] {
			t.Fatal("GatherAt labels differ from Gather")
		}
	}

	small, _, err := s.Train.GatherAt(idx, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := small.Shape; got[0] != 3 || got[1] != 3 || got[2] != 12 || got[3] != 8 {
		t.Fatalf("GatherAt shape %v, want [3,3,12,8]", got)
	}
	want := make([]float32, 12*8)
	for i, j := range idx {
		for c := 0; c < 3; c++ {
			src := s.Train.Images.Data[(j*3+c)*24*16 : (j*3+c+1)*24*16]
			kernel.ResizePlane(want, 12, 8, src, 24, 16)
			got := small.Data[(i*3+c)*12*8 : (i*3+c+1)*12*8]
			for k := range want {
				if math.Float32bits(got[k]) != math.Float32bits(want[k]) {
					t.Fatalf("example %d channel %d: GatherAt differs from kernel resize at %d", i, c, k)
				}
			}
		}
	}
}

// Satellite audit: synth generation with H ≠ W. The render loops stride
// rows by cfg.W and channels by cfg.H*cfg.W; a 24x16 dataset must place a
// zero-shift, zero-noise, unflipped sample exactly on its template.
func TestSynthNonSquare(t *testing.T) {
	cfg := SynthConfig{
		Classes: 4, TrainSize: 16, TestSize: 8,
		C: 3, H: 24, W: 16, Noise: 0, MaxShift: 0, Flip: false, Seed: 7,
	}
	s := GenerateSynth(cfg)
	if got := s.Train.Images.Shape; got[1] != 3 || got[2] != 24 || got[3] != 16 {
		t.Fatalf("train shape %v, want [16,3,24,16]", got)
	}
	imLen := 3 * 24 * 16
	for i := 0; i < s.Train.Len(); i++ {
		k := s.Train.Labels[i]
		for j := 0; j < imLen; j++ {
			if s.Train.Images.Data[i*imLen+j] != s.Templates.Data[k*imLen+j] {
				t.Fatalf("example %d (class %d) diverges from template at %d: noiseless unshifted synth must be exact", i, k, j)
			}
		}
	}

	// Per-channel normalization must hold on the rectangular grid: zero
	// mean, unit variance over each 24x16 plane.
	for k := 0; k < cfg.Classes; k++ {
		for c := 0; c < cfg.C; c++ {
			plane := s.Templates.Data[(k*3+c)*24*16 : (k*3+c+1)*24*16]
			var sum, sumSq float64
			for _, v := range plane {
				sum += float64(v)
				sumSq += float64(v) * float64(v)
			}
			n := float64(len(plane))
			mean := sum / n
			variance := sumSq/n - mean*mean
			if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-3 {
				t.Errorf("template %d channel %d: mean %g var %g, want 0/1", k, c, mean, variance)
			}
		}
	}
}

// A scheduled loader emits each epoch's batches at the schedule's
// resolution and matches the direct GatherAt+Augment path bit-for-bit.
func TestLoaderWithSchedule(t *testing.T) {
	cfg := smallCfg()
	s := GenerateSynth(cfg)
	sched, err := ParseResolutionSchedule("6x6@0-0,12x12@1+")
	if err != nil {
		t.Fatal(err)
	}
	const batch = 16
	l := NewLoader(s.Train, LoaderConfig{Batch: batch, Epochs: 2, Seed: 11, Schedule: sched})
	n := 0
	for {
		b, ok := l.Next()
		if !ok {
			break
		}
		wantH, wantW := sched.At(b.Epoch)
		if b.X.Shape[2] != wantH || b.X.Shape[3] != wantW {
			t.Fatalf("epoch %d batch %d has shape %v, want %dx%d", b.Epoch, b.Index, b.X.Shape, wantH, wantW)
		}
		perm := s.Train.Shuffled(11, b.Epoch)
		want, _, err := s.Train.GatherAt(Batches(perm, batch)[b.Index], wantH, wantW)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Float32bits(b.X.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("epoch %d batch %d diverges from direct GatherAt at %d", b.Epoch, b.Index, i)
			}
		}
		n++
	}
	if want := 2 * (s.Train.Len() / batch); n != want {
		t.Fatalf("loader yielded %d batches, want %d", n, want)
	}
}
