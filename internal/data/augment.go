package data

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Augmenter applies the paper's "weak data augmentation" to assembled
// batches: random padded crops (translations) and horizontal flips. The
// paper's Table 9/10 distinguish runs with and without augmentation; the
// measured experiments reproduce that axis with this type.
type Augmenter struct {
	// Pad is the crop padding: each image is virtually zero-padded by Pad
	// pixels and a random window of the original size is cut out,
	// producing translations in [-Pad, +Pad].
	Pad int
	// Flip mirrors each image horizontally with probability 1/2.
	Flip bool
	r    *rng.Rand
}

// NewAugmenter builds an augmenter drawing randomness from r.
func NewAugmenter(pad int, flip bool, r *rng.Rand) *Augmenter {
	return &Augmenter{Pad: pad, Flip: flip, r: r}
}

// Apply transforms every image of the batch [N, C, H, W] in place.
func (a *Augmenter) Apply(x *tensor.Tensor) {
	if a == nil || (a.Pad == 0 && !a.Flip) {
		return
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	imLen := c * h * w
	scratch := make([]float32, imLen)
	for i := 0; i < n; i++ {
		dy, dx := 0, 0
		if a.Pad > 0 {
			dy = a.r.Intn(2*a.Pad+1) - a.Pad
			dx = a.r.Intn(2*a.Pad+1) - a.Pad
		}
		mirror := a.Flip && a.r.Bool()
		if dy == 0 && dx == 0 && !mirror {
			continue
		}
		img := x.Data[i*imLen : (i+1)*imLen]
		copy(scratch, img)
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				sy := y + dy
				for xx := 0; xx < w; xx++ {
					sx := xx + dx
					if mirror {
						sx = w - 1 - sx
					}
					var v float32
					if sy >= 0 && sy < h && sx >= 0 && sx < w {
						v = scratch[(ch*h+sy)*w+sx]
					}
					img[(ch*h+y)*w+xx] = v
				}
			}
		}
	}
}
