package data

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func smallCfg() SynthConfig {
	return SynthConfig{
		Classes: 4, TrainSize: 64, TestSize: 32,
		C: 3, H: 12, W: 12, Noise: 0.3, MaxShift: 2, Flip: true, Seed: 42,
	}
}

func TestGenerateSynthShapes(t *testing.T) {
	s := GenerateSynth(smallCfg())
	if s.Train.Len() != 64 || s.Test.Len() != 32 {
		t.Fatalf("sizes %d/%d", s.Train.Len(), s.Test.Len())
	}
	c, h, w := s.Train.ImageShape()
	if c != 3 || h != 12 || w != 12 {
		t.Fatalf("image shape %d %d %d", c, h, w)
	}
	if s.Templates.Shape[0] != 4 {
		t.Fatalf("template count %d", s.Templates.Shape[0])
	}
}

func TestGenerateSynthDeterministic(t *testing.T) {
	a := GenerateSynth(smallCfg())
	b := GenerateSynth(smallCfg())
	for i := range a.Train.Images.Data {
		if a.Train.Images.Data[i] != b.Train.Images.Data[i] {
			t.Fatal("same seed must give identical data")
		}
	}
	cfg := smallCfg()
	cfg.Seed++
	c := GenerateSynth(cfg)
	same := 0
	for i := range a.Train.Images.Data {
		if a.Train.Images.Data[i] == c.Train.Images.Data[i] {
			same++
		}
	}
	if same == len(a.Train.Images.Data) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestLabelsBalanced(t *testing.T) {
	s := GenerateSynth(smallCfg())
	counts := make([]int, 4)
	for _, l := range s.Train.Labels {
		counts[l]++
	}
	for k, c := range counts {
		if c != 16 {
			t.Fatalf("class %d has %d examples, want 16", k, c)
		}
	}
}

// TestTemplateSeparability classifies test images by correlation with the
// class templates. Accuracy far above chance confirms the task is learnable;
// accuracy below 100% confirms it is not trivial.
func TestTemplateSeparability(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxShift = 0 // plain correlation is not shift-invariant
	cfg.Flip = false
	s := GenerateSynth(cfg)
	imLen := 3 * 12 * 12
	correct := 0
	for i := 0; i < s.Test.Len(); i++ {
		img := s.Test.Images.Data[i*imLen : (i+1)*imLen]
		best, bestV := -1, math.Inf(-1)
		for k := 0; k < cfg.Classes; k++ {
			tmpl := s.Templates.Data[k*imLen : (k+1)*imLen]
			var dot float64
			for j := range img {
				dot += float64(img[j]) * float64(tmpl[j])
			}
			if dot > bestV {
				best, bestV = k, dot
			}
		}
		if best == s.Test.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(s.Test.Len())
	if acc < 0.9 {
		t.Fatalf("template matching accuracy %v, want >= 0.9 (task unlearnable?)", acc)
	}
}

func TestGather(t *testing.T) {
	s := GenerateSynth(smallCfg())
	x, labels, err := s.Train.Gather([]int{3, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x.Shape[0] != 3 || len(labels) != 3 {
		t.Fatalf("gather shape %v, %d labels", x.Shape, len(labels))
	}
	if labels[0] != s.Train.Labels[3] || labels[2] != s.Train.Labels[4] {
		t.Fatal("gather labels wrong")
	}
	imLen := 3 * 12 * 12
	for j := 0; j < imLen; j++ {
		if x.Data[imLen+j] != s.Train.Images.Data[1*imLen+j] {
			t.Fatal("gather image data wrong")
		}
	}
	// Mutating the gathered copy must not touch the dataset.
	x.Data[0] += 100
	if s.Train.Images.Data[3*imLen] == x.Data[0] {
		t.Fatal("gather must copy")
	}
}

// Out-of-range indices and image/label skew surface as *ShapeError — the
// typed contract that replaced the old panic.
func TestGatherShapeErrors(t *testing.T) {
	s := GenerateSynth(smallCfg())
	_, _, err := s.Train.Gather([]int{9999})
	var se *ShapeError
	if !errors.As(err, &se) {
		t.Fatalf("out-of-range Gather returned %v, want *ShapeError", err)
	}
	if se.Op != "Gather" || se.Index != 9999 {
		t.Fatalf("ShapeError = %+v, want Op=Gather Index=9999", se)
	}

	skew := &Dataset{Images: s.Train.Images, Labels: s.Train.Labels[:4], Classes: s.Train.Classes}
	if _, _, err := skew.Gather([]int{0}); !errors.As(err, &se) {
		t.Fatalf("image/label skew returned %v, want *ShapeError", err)
	}
	if _, _, err := skew.GatherAt([]int{0}, 6, 6); !errors.As(err, &se) {
		t.Fatalf("GatherAt on skewed dataset returned %v, want *ShapeError", err)
	}
	if _, err := skew.Subset([]int{0}); !errors.As(err, &se) {
		t.Fatalf("Subset on skewed dataset returned %v, want *ShapeError", err)
	}

	flat := &Dataset{Images: tensor.New(4, 3*12*12), Labels: make([]int, 4), Classes: 2}
	if _, _, err := flat.Gather([]int{0}); !errors.As(err, &se) {
		t.Fatalf("non-4d images returned %v, want *ShapeError", err)
	}

	if _, _, err := s.Train.GatherAt([]int{0}, 0, 12); !errors.As(err, &se) {
		t.Fatalf("non-positive resize target returned %v, want *ShapeError", err)
	}
}

// Property: sharding partitions the dataset — every example lands in exactly
// one shard and class balance is preserved within one example per class.
func TestShardPartitionProperty(t *testing.T) {
	s := GenerateSynth(smallCfg())
	f := func(pp uint8) bool {
		p := int(pp%7) + 1
		total := 0
		for i := 0; i < p; i++ {
			total += s.Train.Shard(i, p).Len()
		}
		return total == s.Train.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	s := GenerateSynth(smallCfg())
	perm := s.Train.Shuffled(7, 3)
	seen := make([]bool, s.Train.Len())
	for _, i := range perm {
		if seen[i] {
			t.Fatal("duplicate index in shuffle")
		}
		seen[i] = true
	}
	// Different epochs give different permutations.
	perm2 := s.Train.Shuffled(7, 4)
	same := true
	for i := range perm {
		if perm[i] != perm2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epoch shuffles identical")
	}
	// Same epoch, same seed → identical (workers stay in lockstep).
	perm3 := s.Train.Shuffled(7, 3)
	for i := range perm {
		if perm[i] != perm3[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
}

func TestBatches(t *testing.T) {
	perm := []int{0, 1, 2, 3, 4, 5, 6}
	bs := Batches(perm, 3)
	if len(bs) != 2 {
		t.Fatalf("got %d batches, want 2 (short tail dropped)", len(bs))
	}
	if bs[1][2] != 5 {
		t.Fatalf("batch contents wrong: %v", bs)
	}
}

func TestAugmenterIdentityWhenDisabled(t *testing.T) {
	r := rng.New(1)
	x := tensor.RandNormal(r, 1, 2, 3, 8, 8)
	orig := x.Clone()
	NewAugmenter(0, false, rng.New(2)).Apply(x)
	for i := range x.Data {
		if x.Data[i] != orig.Data[i] {
			t.Fatal("disabled augmenter modified data")
		}
	}
}

func TestAugmenterPreservesShapeAndEnergy(t *testing.T) {
	r := rng.New(3)
	x := tensor.RandNormal(r, 1, 4, 3, 10, 10)
	orig := x.Clone()
	NewAugmenter(2, true, rng.New(4)).Apply(x)
	if !x.SameShape(orig) {
		t.Fatal("augmenter changed shape")
	}
	// Translation can only drop pixels (zero padding), never add energy.
	if x.Norm2() > orig.Norm2()+1e-3 {
		t.Fatalf("augmenter increased energy: %v > %v", x.Norm2(), orig.Norm2())
	}
}

func TestAugmenterFlipOnlyIsLossless(t *testing.T) {
	r := rng.New(5)
	x := tensor.RandNormal(r, 1, 8, 1, 6, 6)
	norm := x.Norm2()
	NewAugmenter(0, true, rng.New(6)).Apply(x)
	if math.Abs(x.Norm2()-norm) > 1e-4 {
		t.Fatal("pure flips must preserve norm")
	}
}

func TestSubset(t *testing.T) {
	s := GenerateSynth(smallCfg())
	sub, err := s.Train.Subset([]int{0, 2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 4 || sub.Classes != 4 {
		t.Fatalf("subset len %d classes %d", sub.Len(), sub.Classes)
	}
}
