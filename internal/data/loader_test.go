package data

import (
	"testing"

	"repro/internal/rng"
)

func TestLoaderMatchesSynchronousPath(t *testing.T) {
	s := GenerateSynth(smallCfg())
	cfg := LoaderConfig{Batch: 16, Epochs: 3, Seed: 9, AugmentPad: 2, AugmentFlip: true}
	l := NewLoader(s.Train, cfg)

	// Reference: the synchronous assembly with identical seeding.
	aug := NewAugmenter(2, true, rng.New(uint64(9)^0xa5a5a5a5))
	for epoch := 0; epoch < 3; epoch++ {
		perm := s.Train.Shuffled(9, epoch)
		for i, idx := range Batches(perm, 16) {
			want, wantLabels := s.Train.MustGather(idx)
			aug.Apply(want)
			got, ok := l.Next()
			if !ok {
				t.Fatalf("loader exhausted early at epoch %d batch %d", epoch, i)
			}
			if got.Epoch != epoch || got.Index != i {
				t.Fatalf("batch position (%d,%d), want (%d,%d)", got.Epoch, got.Index, epoch, i)
			}
			for j := range wantLabels {
				if got.Labels[j] != wantLabels[j] {
					t.Fatal("label order differs from synchronous path")
				}
			}
			for j := range want.Data {
				if got.X.Data[j] != want.Data[j] {
					t.Fatal("prefetched batch differs from synchronous assembly")
				}
			}
		}
	}
	if _, ok := l.Next(); ok {
		t.Fatal("loader should be exhausted")
	}
}

func TestLoaderBatchCount(t *testing.T) {
	s := GenerateSynth(smallCfg()) // 64 train examples
	l := NewLoader(s.Train, LoaderConfig{Batch: 16, Epochs: 2, Seed: 1})
	count := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 2*(64/16) {
		t.Fatalf("loader yielded %d batches, want 8", count)
	}
}

func TestLoaderCloseUnblocksProducer(t *testing.T) {
	s := GenerateSynth(smallCfg())
	l := NewLoader(s.Train, LoaderConfig{Batch: 8, Epochs: 100, Seed: 2, Prefetch: 1})
	// Take one batch and abandon the rest; Close must not deadlock.
	if _, ok := l.Next(); !ok {
		t.Fatal("no first batch")
	}
	l.Close()
}

func TestLoaderWithoutAugmentation(t *testing.T) {
	s := GenerateSynth(smallCfg())
	l := NewLoader(s.Train, LoaderConfig{Batch: 32, Epochs: 1, Seed: 3})
	b, ok := l.Next()
	if !ok || b.X.Shape[0] != 32 {
		t.Fatalf("bad first batch: ok=%v shape=%v", ok, b.X.Shape)
	}
	// Unaugmented data must match Gather exactly.
	perm := s.Train.Shuffled(3, 0)
	want, _ := s.Train.MustGather(perm[:32])
	for j := range want.Data {
		if b.X.Data[j] != want.Data[j] {
			t.Fatal("unaugmented loader batch differs from Gather")
		}
	}
	l.Close()
}
