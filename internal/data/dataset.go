// Package data provides the dataset substrate for the measured experiments:
// a deterministic synthetic image-classification generator ("SynthImageNet"),
// batch assembly with optional weak augmentation (random crop + horizontal
// flip, matching the paper's "weak data augmentation" baseline), epoch
// shuffling, and the worker sharding used by data-parallel training.
//
// ImageNet-1k itself (1.28M images) is not redistributable and far exceeds
// this environment; SynthImageNet is the substitution documented in
// DESIGN.md. It preserves what the paper's optimization experiments need:
// a multi-class vision-like task where (a) small-batch SGD reaches high
// accuracy in a fixed epoch budget, (b) naive large-batch training
// underperforms at equal epochs, and (c) translation/flip augmentation
// carries signal.
package data

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dataset is an in-memory labelled image set in NCHW layout.
type Dataset struct {
	Images  *tensor.Tensor // [N, C, H, W]
	Labels  []int
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Labels) }

// ImageShape returns (C, H, W).
func (d *Dataset) ImageShape() (c, h, w int) {
	return d.Images.Shape[1], d.Images.Shape[2], d.Images.Shape[3]
}

// Gather copies the examples at idx into a fresh batch tensor and label
// slice. The copy keeps augmentation from mutating the dataset.
func (d *Dataset) Gather(idx []int) (*tensor.Tensor, []int) {
	c, h, w := d.ImageShape()
	imLen := c * h * w
	x := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			panic(fmt.Sprintf("data: Gather index %d out of range [0,%d)", j, d.Len()))
		}
		copy(x.Data[i*imLen:(i+1)*imLen], d.Images.Data[j*imLen:(j+1)*imLen])
		labels[i] = d.Labels[j]
	}
	return x, labels
}

// Subset returns a view-like dataset holding copies of the examples at idx.
func (d *Dataset) Subset(idx []int) *Dataset {
	x, labels := d.Gather(idx)
	return &Dataset{Images: x, Labels: labels, Classes: d.Classes}
}

// Shard partitions the dataset round-robin into p shards and returns shard
// i. Round-robin keeps class balance across workers, which matters for the
// per-worker gradient quality in data-parallel SGD. Panics unless
// 0 <= i < p.
func (d *Dataset) Shard(i, p int) *Dataset {
	if p <= 0 || i < 0 || i >= p {
		panic(fmt.Sprintf("data: Shard(%d, %d) invalid", i, p))
	}
	var idx []int
	for j := i; j < d.Len(); j += p {
		idx = append(idx, j)
	}
	return d.Subset(idx)
}

// Shuffled returns a deterministic permutation of example indices for the
// given epoch. Every worker computes the same permutation from the same
// seed, which is what keeps synchronous data-parallel training sequentially
// consistent with the single-process run.
func (d *Dataset) Shuffled(seed uint64, epoch int) []int {
	r := rng.New(seed ^ (uint64(epoch)+1)*0x9e3779b97f4a7c15)
	return r.Perm(d.Len())
}

// Spans splits n batch rows into k contiguous near-equal spans [lo, hi),
// the first n mod k spans one row longer. It is the logical shard split of
// data-parallel training (internal/dist): the split depends only on (n, k),
// which is what makes the engine's reductions independent of the physical
// worker count. Spans may be empty when n < k.
func Spans(n, k int) [][2]int {
	if k <= 0 {
		panic(fmt.Sprintf("data: Spans(%d, %d): need k > 0", n, k))
	}
	base, rem := n/k, n%k
	spans := make([][2]int, k)
	lo := 0
	for i := range spans {
		hi := lo + base
		if i < rem {
			hi++
		}
		spans[i] = [2]int{lo, hi}
		lo = hi
	}
	return spans
}

// Batches splits a permutation into consecutive batches of size b; the final
// short batch is dropped (standard for fixed-size training pipelines; with
// the paper's fixed-epoch accounting the epoch size is then n - n mod b).
func Batches(perm []int, b int) [][]int {
	if b <= 0 {
		panic("data: batch size must be positive")
	}
	var out [][]int
	for lo := 0; lo+b <= len(perm); lo += b {
		out = append(out, perm[lo:lo+b])
	}
	return out
}
