// Package data provides the dataset substrate for the measured experiments:
// a deterministic synthetic image-classification generator ("SynthImageNet"),
// batch assembly with optional weak augmentation (random crop + horizontal
// flip, matching the paper's "weak data augmentation" baseline), epoch
// shuffling, and the worker sharding used by data-parallel training.
//
// ImageNet-1k itself (1.28M images) is not redistributable and far exceeds
// this environment; SynthImageNet is the substitution documented in
// DESIGN.md. It preserves what the paper's optimization experiments need:
// a multi-class vision-like task where (a) small-batch SGD reaches high
// accuracy in a fixed epoch budget, (b) naive large-batch training
// underperforms at equal epochs, and (c) translation/flip augmentation
// carries signal.
package data

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dataset is an in-memory labelled image set in NCHW layout.
type Dataset struct {
	Images  *tensor.Tensor // [N, C, H, W]
	Labels  []int
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Labels) }

// ImageShape returns (C, H, W).
func (d *Dataset) ImageShape() (c, h, w int) {
	return d.Images.Shape[1], d.Images.Shape[2], d.Images.Shape[3]
}

// check validates the dataset's stored geometry before a view is
// materialized: Images must be [N,C,H,W] and agree with the label count.
func (d *Dataset) check(op string) error {
	if d.Images == nil {
		return shapeErrf(op, -1, "dataset has nil image tensor")
	}
	if len(d.Images.Shape) != 4 {
		return shapeErrf(op, -1, "image tensor is %v, want 4-d [N,C,H,W]", d.Images.Shape)
	}
	if n := d.Images.Shape[0]; n != len(d.Labels) {
		return shapeErrf(op, -1, "image tensor holds %d examples but dataset has %d labels", n, len(d.Labels))
	}
	return nil
}

// Gather copies the examples at idx into a fresh batch tensor and label
// slice. The copy keeps augmentation from mutating the dataset. A malformed
// dataset (non-[N,C,H,W] images, image/label skew) or an index outside
// [0, N) returns a *ShapeError rather than mis-indexing or panicking.
func (d *Dataset) Gather(idx []int) (*tensor.Tensor, []int, error) {
	if err := d.check("Gather"); err != nil {
		return nil, nil, err
	}
	c, h, w := d.ImageShape()
	imLen := c * h * w
	x := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			return nil, nil, shapeErrf("Gather", j, "out of range [0,%d)", d.Len())
		}
		copy(x.Data[i*imLen:(i+1)*imLen], d.Images.Data[j*imLen:(j+1)*imLen])
		labels[i] = d.Labels[j]
	}
	return x, labels, nil
}

// MustGather is Gather for callers whose indices are valid by construction
// (permutations of [0, N)); it panics on the errors Gather would return.
func (d *Dataset) MustGather(idx []int) (*tensor.Tensor, []int) {
	x, labels, err := d.Gather(idx)
	if err != nil {
		panic(err)
	}
	return x, labels
}

// GatherAt materializes the batch at resolution h×w: examples are gathered
// and each channel plane is resampled with the deterministic kernel resize
// (area for shrink, bilinear for grow). At the dataset's native resolution
// it is exactly Gather — same bytes, no resampling. This is the primitive
// the loader and trainer use to apply a ResolutionSchedule while leaving
// shard/span logic untouched: batches change shape, indices do not.
func (d *Dataset) GatherAt(idx []int, h, w int) (*tensor.Tensor, []int, error) {
	if err := d.check("GatherAt"); err != nil {
		return nil, nil, err
	}
	c, sh, sw := d.ImageShape()
	if h == sh && w == sw {
		return d.Gather(idx)
	}
	if h <= 0 || w <= 0 {
		return nil, nil, shapeErrf("GatherAt", -1, "target resolution %dx%d must be positive", h, w)
	}
	x := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	srcPlane, dstPlane := sh*sw, h*w
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			return nil, nil, shapeErrf("GatherAt", j, "out of range [0,%d)", d.Len())
		}
		for ch := 0; ch < c; ch++ {
			src := d.Images.Data[(j*c+ch)*srcPlane : (j*c+ch+1)*srcPlane]
			dst := x.Data[(i*c+ch)*dstPlane : (i*c+ch+1)*dstPlane]
			kernel.ResizePlane(dst, h, w, src, sh, sw)
		}
		labels[i] = d.Labels[j]
	}
	return x, labels, nil
}

// Subset returns a view-like dataset holding copies of the examples at idx.
func (d *Dataset) Subset(idx []int) (*Dataset, error) {
	x, labels, err := d.Gather(idx)
	if err != nil {
		return nil, &ShapeError{Op: "Subset", Index: err.(*ShapeError).Index, Detail: err.(*ShapeError).Detail}
	}
	return &Dataset{Images: x, Labels: labels, Classes: d.Classes}, nil
}

// Shard partitions the dataset round-robin into p shards and returns shard
// i. Round-robin keeps class balance across workers, which matters for the
// per-worker gradient quality in data-parallel SGD. Panics unless
// 0 <= i < p.
func (d *Dataset) Shard(i, p int) *Dataset {
	if p <= 0 || i < 0 || i >= p {
		panic(fmt.Sprintf("data: Shard(%d, %d) invalid", i, p))
	}
	var idx []int
	for j := i; j < d.Len(); j += p {
		idx = append(idx, j)
	}
	// Round-robin indices are in range by construction; a failure here is a
	// malformed dataset, which Shard's contract treats as a programmer error.
	sub, err := d.Subset(idx)
	if err != nil {
		panic(err)
	}
	return sub
}

// Shuffled returns a deterministic permutation of example indices for the
// given epoch. Every worker computes the same permutation from the same
// seed, which is what keeps synchronous data-parallel training sequentially
// consistent with the single-process run.
func (d *Dataset) Shuffled(seed uint64, epoch int) []int {
	r := rng.New(seed ^ (uint64(epoch)+1)*0x9e3779b97f4a7c15)
	return r.Perm(d.Len())
}

// Spans splits n batch rows into k contiguous near-equal spans [lo, hi),
// the first n mod k spans one row longer. It is the logical shard split of
// data-parallel training (internal/dist): the split depends only on (n, k),
// which is what makes the engine's reductions independent of the physical
// worker count. Spans may be empty when n < k.
func Spans(n, k int) [][2]int {
	if k <= 0 {
		panic(fmt.Sprintf("data: Spans(%d, %d): need k > 0", n, k))
	}
	base, rem := n/k, n%k
	spans := make([][2]int, k)
	lo := 0
	for i := range spans {
		hi := lo + base
		if i < rem {
			hi++
		}
		spans[i] = [2]int{lo, hi}
		lo = hi
	}
	return spans
}

// Batches splits a permutation into consecutive batches of size b; the final
// short batch is dropped (standard for fixed-size training pipelines; with
// the paper's fixed-epoch accounting the epoch size is then n - n mod b).
func Batches(perm []int, b int) [][]int {
	if b <= 0 {
		panic("data: batch size must be positive")
	}
	var out [][]int
	for lo := 0; lo+b <= len(perm); lo += b {
		out = append(out, perm[lo:lo+b])
	}
	return out
}
