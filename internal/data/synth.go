package data

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// SynthConfig parameterizes the synthetic dataset generator.
type SynthConfig struct {
	Classes   int
	TrainSize int
	TestSize  int
	C, H, W   int
	// Noise is the additive Gaussian noise σ applied per pixel. Higher
	// noise widens the generalization gap between small and large batches.
	Noise float32
	// MaxShift is the largest cyclic translation (pixels) applied when a
	// sample is rendered from its class template. Translations are what
	// make crop augmentation informative.
	MaxShift int
	// Flip renders half the samples mirrored so horizontal-flip
	// augmentation carries signal.
	Flip bool
	Seed uint64
}

// DefaultSynthConfig returns a laptop-scale dataset: 8 classes of 24x24 RGB
// images, 4096 train / 1024 test examples.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Classes: 8, TrainSize: 4096, TestSize: 1024,
		C: 3, H: 24, W: 24,
		Noise: 0.35, MaxShift: 4, Flip: true,
		Seed: 20180901,
	}
}

// Synth holds the generated train/test split plus the class templates
// (exposed for tests that check separability directly).
type Synth struct {
	Train, Test *Dataset
	Templates   *tensor.Tensor // [Classes, C, H, W]
	Config      SynthConfig
}

// GenerateSynth builds a deterministic synthetic dataset. Each class is a
// smooth band-limited random field (a sum of low-frequency sinusoids per
// channel); samples are cyclic translations of the class template, optional
// mirror images, plus per-pixel Gaussian noise. The construction guarantees:
//
//   - classes are separable by a convnet (smooth translated patterns),
//   - single samples are ambiguous enough that optimization quality matters
//     (noise σ comparable to signal),
//   - the distribution is exactly reproducible from the seed.
func GenerateSynth(cfg SynthConfig) *Synth {
	if cfg.Classes <= 1 || cfg.TrainSize <= 0 || cfg.C <= 0 || cfg.H <= 0 || cfg.W <= 0 {
		panic("data: invalid SynthConfig")
	}
	root := rng.New(cfg.Seed)
	templates := tensor.New(cfg.Classes, cfg.C, cfg.H, cfg.W)
	tmplRNG := root.Split()
	for k := 0; k < cfg.Classes; k++ {
		renderTemplate(tmplRNG.Split(), templates, k, cfg)
	}
	s := &Synth{Templates: templates, Config: cfg}
	s.Train = renderSet(root.Split(), templates, cfg, cfg.TrainSize)
	s.Test = renderSet(root.Split(), templates, cfg, cfg.TestSize)
	return s
}

// renderTemplate fills templates[k] with a smooth random field of unit
// variance per channel.
func renderTemplate(r *rng.Rand, templates *tensor.Tensor, k int, cfg SynthConfig) {
	imLen := cfg.C * cfg.H * cfg.W
	base := k * imLen
	const waves = 5
	for c := 0; c < cfg.C; c++ {
		type wave struct {
			fh, fw, phase, amp float64
		}
		ws := make([]wave, waves)
		for i := range ws {
			ws[i] = wave{
				fh:    float64(r.Intn(3) + 1),
				fw:    float64(r.Intn(3) + 1),
				phase: 2 * math.Pi * r.Float64(),
				amp:   0.5 + r.Float64(),
			}
			if r.Bool() {
				ws[i].fh = -ws[i].fh
			}
		}
		var sum, sumSq float64
		plane := templates.Data[base+c*cfg.H*cfg.W : base+(c+1)*cfg.H*cfg.W]
		for h := 0; h < cfg.H; h++ {
			for w := 0; w < cfg.W; w++ {
				var v float64
				for _, wv := range ws {
					v += wv.amp * math.Sin(2*math.Pi*(wv.fh*float64(h)/float64(cfg.H)+wv.fw*float64(w)/float64(cfg.W))+wv.phase)
				}
				plane[h*cfg.W+w] = float32(v)
				sum += v
				sumSq += v * v
			}
		}
		// Normalize channel to zero mean, unit variance.
		n := float64(cfg.H * cfg.W)
		mean := sum / n
		std := math.Sqrt(sumSq/n - mean*mean)
		if std < 1e-6 {
			std = 1
		}
		for i := range plane {
			plane[i] = float32((float64(plane[i]) - mean) / std)
		}
	}
}

// renderSet draws n labelled samples from the template distribution.
func renderSet(r *rng.Rand, templates *tensor.Tensor, cfg SynthConfig, n int) *Dataset {
	imLen := cfg.C * cfg.H * cfg.W
	x := tensor.New(n, cfg.C, cfg.H, cfg.W)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		k := i % cfg.Classes // balanced labels
		labels[i] = k
		dy, dx := 0, 0
		if cfg.MaxShift > 0 {
			dy = r.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
			dx = r.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		}
		mirror := cfg.Flip && r.Bool()
		dst := x.Data[i*imLen : (i+1)*imLen]
		src := templates.Data[k*imLen : (k+1)*imLen]
		for c := 0; c < cfg.C; c++ {
			for h := 0; h < cfg.H; h++ {
				sh := ((h+dy)%cfg.H + cfg.H) % cfg.H
				for w := 0; w < cfg.W; w++ {
					sw := ((w+dx)%cfg.W + cfg.W) % cfg.W
					if mirror {
						sw = cfg.W - 1 - sw
					}
					dst[(c*cfg.H+h)*cfg.W+w] = src[(c*cfg.H+sh)*cfg.W+sw] + cfg.Noise*r.NormFloat32()
				}
			}
		}
	}
	perm := r.Perm(n)
	shuffled := tensor.New(n, cfg.C, cfg.H, cfg.W)
	shuffledLabels := make([]int, n)
	for i, j := range perm {
		copy(shuffled.Data[i*imLen:(i+1)*imLen], x.Data[j*imLen:(j+1)*imLen])
		shuffledLabels[i] = labels[j]
	}
	return &Dataset{Images: shuffled, Labels: shuffledLabels, Classes: cfg.Classes}
}
