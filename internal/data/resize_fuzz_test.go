package data

import (
	"reflect"
	"testing"
)

// FuzzParseResolutionSchedule hammers the cmd/train schedule syntax: any
// input must either parse into a schedule that satisfies the tiling
// contract or return an error — never panic — and a parsed schedule must
// survive a String→reparse round trip exactly (the syntax the trainer
// prints is the syntax it accepts). The committed corpus under
// testdata/fuzz seeds the grammar's edges — bare HxW shorthand, inclusive
// ranges, open tails, single-epoch phases, whitespace, and the malformed
// neighbours of each — and CI replays it on every push.
func FuzzParseResolutionSchedule(f *testing.F) {
	seeds := []string{
		"24x24",                      // bare shorthand
		"12x12@0-3,24x24@4+",         // the ENTR curriculum
		"8x8@0+",                     // single open phase
		"8x8@0,16x16@1+",             // single-epoch phase
		"8x8@0-2,4x4@3-3,16x16@4+",   // three phases, one degenerate span
		" 12x12@0-1 , 24x24@2+ ",     // whitespace tolerance
		"",                           // empty
		",",                          // empty parts
		"x",                          // no dimensions
		"0x8",                        // zero resolution
		"-4x8",                       // negative resolution
		"8x8@",                       // empty span
		"8x8@+",                      // sign with no epoch
		"8x8@3-1,1x1@2+",             // inverted range
		"8x8@1+",                     // does not start at 0
		"8x8@0-2,4x4@2-3",            // overlap + closed tail
		"8x8@0+,4x4@1+",              // open phase before the end
		"99999999999999999999x1",     // Atoi overflow
		"8x8@0-99999999999999999999", // span overflow
		"8x8@00-02,4x4@3+",           // leading zeros
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := ParseResolutionSchedule(s)
		if err != nil {
			if sched != nil {
				t.Fatalf("ParseResolutionSchedule(%q) returned both a schedule and error %v", s, err)
			}
			return
		}
		// A validated schedule's At is total and positive on every epoch.
		for epoch := 0; epoch < 12; epoch++ {
			h, w := sched.At(epoch)
			if h <= 0 || w <= 0 {
				t.Fatalf("ParseResolutionSchedule(%q).At(%d) = %dx%d", s, epoch, h, w)
			}
		}
		// String renders back into the parse syntax, exactly.
		rendered := sched.String()
		again, err := ParseResolutionSchedule(rendered)
		if err != nil {
			t.Fatalf("round trip %q -> %q failed to reparse: %v", s, rendered, err)
		}
		if !reflect.DeepEqual(sched.Phases(), again.Phases()) {
			t.Fatalf("round trip %q -> %q changed phases: %+v vs %+v",
				s, rendered, sched.Phases(), again.Phases())
		}
	})
}
