package data

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Batch is one assembled training batch.
type Batch struct {
	X      *tensor.Tensor
	Labels []int
	// Epoch and Index locate the batch in the training schedule.
	Epoch, Index int
}

// Loader assembles batches on a background goroutine so gather and
// augmentation overlap the previous step's compute — the input-pipeline
// overlap that production trainers (and the Intel Caffe stack the paper
// used) rely on to keep devices busy. The sequence of batches is exactly
// the deterministic Shuffled/Batches/Augment order of the synchronous
// path; the tests verify bit-equality.
type Loader struct {
	ds      *Dataset
	batch   int
	epochs  int
	seed    uint64
	augPad  int
	augFlip bool
	sched   *ResolutionSchedule

	ch   chan Batch
	stop chan struct{}
}

// LoaderConfig configures a Loader.
type LoaderConfig struct {
	Batch  int
	Epochs int
	Seed   uint64
	// AugmentPad/AugmentFlip enable the weak augmentation. The augmenter
	// stream is seeded from Seed so prefetched batches match the
	// non-prefetched reference exactly.
	AugmentPad  int
	AugmentFlip bool
	// Prefetch is the channel depth (default 2).
	Prefetch int
	// Schedule, when non-nil, is the per-epoch resolution plan: each batch
	// is materialized at Schedule.At(epoch) via GatherAt before
	// augmentation. Nil trains every epoch at the dataset's native size.
	Schedule *ResolutionSchedule
}

// NewLoader starts the background assembly goroutine. Callers must either
// drain the loader or call Close.
func NewLoader(ds *Dataset, cfg LoaderConfig) *Loader {
	if cfg.Batch <= 0 || cfg.Epochs <= 0 {
		panic("data: Loader needs positive batch and epochs")
	}
	depth := cfg.Prefetch
	if depth <= 0 {
		depth = 2
	}
	l := &Loader{
		ds: ds, batch: cfg.Batch, epochs: cfg.Epochs, seed: cfg.Seed,
		augPad: cfg.AugmentPad, augFlip: cfg.AugmentFlip, sched: cfg.Schedule,
		ch:   make(chan Batch, depth),
		stop: make(chan struct{}),
	}
	go l.fill()
	return l
}

func (l *Loader) fill() {
	defer close(l.ch)
	var aug *Augmenter
	if l.augPad > 0 || l.augFlip {
		aug = NewAugmenter(l.augPad, l.augFlip, rng.New(l.seed^0xa5a5a5a5))
	}
	_, nativeH, nativeW := l.ds.ImageShape()
	for epoch := 0; epoch < l.epochs; epoch++ {
		h, w := nativeH, nativeW
		if l.sched != nil {
			h, w = l.sched.At(epoch)
		}
		perm := l.ds.Shuffled(l.seed, epoch)
		for i, idx := range Batches(perm, l.batch) {
			x, labels, err := l.ds.GatherAt(idx, h, w)
			if err != nil {
				// Permutation indices are in range and the schedule is
				// validated at parse time, so a failure here is a malformed
				// dataset — an invariant violation, not a runtime condition.
				panic(err)
			}
			if aug != nil {
				aug.Apply(x)
			}
			select {
			case l.ch <- Batch{X: x, Labels: labels, Epoch: epoch, Index: i}:
			case <-l.stop:
				return
			}
		}
	}
}

// Next returns the next batch, or ok=false when the schedule is exhausted.
func (l *Loader) Next() (Batch, bool) {
	b, ok := <-l.ch
	return b, ok
}

// Close stops the background goroutine early. Safe to call multiple times
// is not required; call exactly once when abandoning the loader.
func (l *Loader) Close() {
	close(l.stop)
	// Drain so the producer can observe stop even if blocked on a send.
	for range l.ch {
	}
}
