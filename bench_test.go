// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Benchmarks involving
// real training use a reduced configuration so the full suite stays within
// minutes; cmd/experiments runs the full-fidelity versions that populate
// EXPERIMENTS.md. Custom metrics are attached via b.ReportMetric: accuracies
// in percent, simulated times in minutes.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/harness"
	"repro/internal/kernel"
	"repro/internal/models"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// benchSetup is the reduced measured-experiment configuration used by the
// benchmarks: 1024 training examples, 10 epochs (the full EXPERIMENTS.md
// runs use 2048/20).
func benchSetup() *harness.Setup {
	s := harness.DefaultSetup()
	s.TrainSize = 1024
	s.Epochs = 10
	return s
}

func reportTable(b *testing.B, t *harness.Table) {
	b.Helper()
	if len(t.Rows) == 0 {
		b.Fatalf("%s produced no rows", t.ID)
	}
}

// BenchmarkAllreduce is the topology perf baseline: one full allreduce
// (Reduce + Broadcast) at P=8 across tensor sizes from a small dense layer
// (64K floats) up to ResNet-50's full gradient (25.6M floats). The custom
// metrics report the schedule each topology would put on the wire.
func BenchmarkAllreduce(b *testing.B) {
	const workers = 8
	sizes := []struct {
		name string
		n    int
	}{
		{"64K", 1 << 16},
		{"1M", 1 << 20},
		{"resnet50", int(models.ResNet50Spec().ParamCount())},
	}
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("%s/%s", algo, size.name), func(b *testing.B) {
				bufs := make([][]float32, workers)
				r := rng.New(1)
				for i := range bufs {
					bufs[i] = make([]float32, size.n)
					for j := 0; j < size.n; j += 127 {
						bufs[i][j] = r.NormFloat32()
					}
				}
				b.SetBytes(int64(4 * size.n))
				b.ResetTimer()
				var stats dist.CommStats
				for i := 0; i < b.N; i++ {
					stats = dist.CommStats{}
					dist.Reduce(algo, bufs, &stats)
					dist.Broadcast(algo, bufs, &stats)
				}
				b.ReportMetric(float64(stats.Messages), "msgs/op")
				b.ReportMetric(float64(stats.Steps), "rounds/op")
			})
		}
	}
}

// BenchmarkReduction compares the two reduction-policy kernels on the
// engine's own hot path: an 8-shard sum over tensors up to ResNet-50's
// full gradient. canonical-f64 is the strict-order float64 discipline,
// pairwise-f32 the fixed-tree float32 kernel — the measured gap is the
// ROADMAP's "vectorizable f32 pairwise summation" payoff. CI runs this at
// -benchtime 1x as a smoke test.
func BenchmarkReduction(b *testing.B) {
	sizes := []struct {
		name string
		n    int
	}{
		{"64K", 1 << 16},
		{"1M", 1 << 20},
		{"resnet50", int(models.ResNet50Spec().ParamCount())},
	}
	for _, policy := range []dist.Reduction{dist.CanonicalF64, dist.PairwiseF32} {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("%s/%s", policy, size.name), func(b *testing.B) {
				const shards = 8
				r := rng.New(1)
				srcs := make([][]float32, shards)
				for s := range srcs {
					srcs[s] = make([]float32, size.n)
					for j := 0; j < size.n; j += 127 {
						srcs[s][j] = r.NormFloat32()
					}
				}
				dst := make([]float32, size.n)
				b.SetBytes(int64(shards * 4 * size.n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if policy == dist.PairwiseF32 {
						kernel.PairwiseAccumulate(dst, srcs, nil)
					} else {
						kernel.CanonicalAccumulate(dst, srcs, nil)
					}
				}
			})
		}
	}
}

// BenchmarkGemm times the blocked GEMM micro-kernels behind every conv and
// linear layer (tensor.Gemm lowers onto internal/kernel) at the layer
// shapes the micro models hit and at a square compute-bound size, in both
// storage precisions: /f32 is the float32 path, /f16 the binary16-storage
// path (tensor.GemmHalf, float32 accumulation). The f32/f16 pairs are what
// cmd/benchjson turns into the speedup ratios archived in BENCH_gemm.json.
// CI runs this at -benchtime 1x as a smoke test.
func BenchmarkGemm(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int
	}{
		{"conv-lowered/32x27x256", 32, 27, 256}, // first conv: [outC, inC·k·k]·[k·k·inC, outH·outW]
		{"square/256", 256, 256, 256},
		{"fc/512x1024x64", 512, 1024, 64},
	}
	for _, sh := range shapes {
		r := rng.New(2)
		a := tensor.RandNormal(r, 1, sh.m, sh.k)
		x := tensor.RandNormal(r, 1, sh.k, sh.n)
		ah, xh := tensor.NewHalf(sh.m, sh.k), tensor.NewHalf(sh.k, sh.n)
		tensor.PackHalf(ah, a)
		tensor.PackHalf(xh, x)
		c := tensor.New(sh.m, sh.n)
		flops := int64(2 * sh.m * sh.k * sh.n * 4)
		b.Run(sh.name+"/f32", func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				tensor.Gemm(false, false, 1, a, x, 0, c)
			}
		})
		b.Run(sh.name+"/f16", func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				tensor.GemmHalf(false, false, 1, ah, xh, 0, c)
			}
		})
	}
}

// BenchmarkTable1_StateOfTheArt regenerates the headline comparison (32K
// ResNet-50 in ~15 minutes) from the calibrated simulator.
func BenchmarkTable1_StateOfTheArt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Table1())
	}
	est := cluster.Simulate(cluster.KNLCluster(2048), models.ResNet50Spec(), 32768, 64, 1280000)
	b.ReportMetric(est.TotalSec/60, "sim-minutes")
}

// BenchmarkTable2_IterationScaling regenerates the iteration/time model.
func BenchmarkTable2_IterationScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Table2(0.09, 0.05))
	}
}

// BenchmarkTable3_Baselines regenerates the benchmark-target table.
func BenchmarkTable3_Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Table3())
	}
}

// BenchmarkTable4_PriorWork regenerates the prior-work survey.
func BenchmarkTable4_PriorWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Table4())
	}
}

// BenchmarkTable5_LRSweep runs the measured learning-rate sweep at a large
// batch without LARS (the divergence table).
func BenchmarkTable5_LRSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSetup()
		t, err := harness.Table5(s)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkTable6_ScalingRatio regenerates the params/flops/ratio table
// from the exact model graphs.
func BenchmarkTable6_ScalingRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Table6())
	}
	b.ReportMetric(models.ResNet50Spec().ScalingRatio(), "resnet-ratio")
	b.ReportMetric(models.AlexNetSpec().ScalingRatio(), "alexnet-ratio")
}

// BenchmarkTable7_LARSSweep runs the measured LARS batch sweep.
func BenchmarkTable7_LARSSweep(b *testing.B) {
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		s := benchSetup()
		t, err := harness.Table7(s)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
		last = t
	}
	_ = last
}

// BenchmarkTable8_AlexNetTimes regenerates the AlexNet wall-clock table.
func BenchmarkTable8_AlexNetTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Table8())
	}
	est := cluster.Simulate(cluster.CPUCluster(1024), models.AlexNetBNSpec(), 32768, 100, 1280000)
	b.ReportMetric(est.TotalSec/60, "sim-minutes-1024cpu")
}

// BenchmarkTable9_ResNetTimes regenerates the ResNet-50 wall-clock table.
func BenchmarkTable9_ResNetTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Table9())
	}
	est := cluster.Simulate(cluster.KNLCluster(2048), models.ResNet50Spec(), 32768, 90, 1280000)
	b.ReportMetric(est.TotalSec/60, "sim-minutes-2048knl")
}

// BenchmarkTable10_AccuracyComparison regenerates the cross-team accuracy
// table.
func BenchmarkTable10_AccuracyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Table10())
	}
}

// BenchmarkTable11_Networks regenerates the alpha-beta constants and prices
// allreduces on each fabric.
func BenchmarkTable11_Networks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Table11())
	}
}

// BenchmarkTable12_Energy regenerates the energy table.
func BenchmarkTable12_Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Table12())
	}
}

// BenchmarkFigure1_AccuracyVsBatch runs the measured accuracy-vs-batch
// comparison (the paper's headline figure) at bench scale and reports the
// LARS-vs-linear accuracies at the largest recoverable batch.
func BenchmarkFigure1_AccuracyVsBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSetup()
		t, err := harness.Figure1(s)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFigure3_ThroughputVsBatch regenerates the simulated M40 curve
// and measures this machine's real micro-AlexNet throughput growth with
// batch size (the same saturating shape: bigger batches feed the GEMM
// kernels better).
func BenchmarkFigure3_ThroughputVsBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Figure3())
	}
	net := models.NewMicroAlexNet(models.MicroConfig{Classes: 8, InH: 16, Width: 8, Seed: 1})
	r := rng.New(2)
	for _, batch := range []int{8, 64} {
		x := tensor.RandNormal(r, 1, batch, 3, 16, 16)
		net.Forward(x, false) // warm up buffers
		const iters = 5
		start := time.Now()
		for i := 0; i < iters; i++ {
			net.Forward(x, false)
		}
		imgPerSec := float64(iters*batch) / time.Since(start).Seconds()
		b.ReportMetric(imgPerSec, fmt.Sprintf("img/s-b%d", batch))
	}
}

// BenchmarkFigure4_LargeBatchCurves runs the measured per-epoch curves at a
// large batch, LARS vs linear scaling.
func BenchmarkFigure4_LargeBatchCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSetup()
		t, err := harness.Figure4(s)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFigure5_EpochCurves runs the fixed-budget accuracy-vs-epoch
// comparison (small batch vs large LARS batch).
func BenchmarkFigure5_EpochCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSetup()
		t, err := harness.Figure5and6(s)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFigure6_FlopCurves reports the flop accounting of the fixed
// budget: large batch adds no operations.
func BenchmarkFigure6_FlopCurves(b *testing.B) {
	spec := models.MicroAlexNetSpec(models.MicroConfig{Classes: 8, InH: 16, Width: 8})
	for i := 0; i < b.N; i++ {
		if spec.TrainFLOPsPerImage() <= 0 {
			b.Fatal("flop accounting broken")
		}
	}
	b.ReportMetric(float64(spec.TrainFLOPsPerImage()), "train-flops/image")
}

// BenchmarkFigure7_TimeToAccuracy regenerates the simulated time-to-target
// comparison on one DGX-1.
func BenchmarkFigure7_TimeToAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Figure7())
	}
	small := cluster.Simulate(cluster.DGX1(), models.AlexNetSpec(), 512, 100, 1280000)
	large := cluster.Simulate(cluster.DGX1(), models.AlexNetSpec(), 4096, 100, 1280000)
	b.ReportMetric(small.TotalSec/3600, "sim-hours-b512")
	b.ReportMetric(large.TotalSec/3600, "sim-hours-b4096")
}

// BenchmarkFigure8_Iterations regenerates iterations-vs-batch.
func BenchmarkFigure8_Iterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Figure8())
	}
}

// BenchmarkFigure9_Messages regenerates messages-vs-batch.
func BenchmarkFigure9_Messages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Figure9())
	}
}

// BenchmarkFigure10_Volume regenerates communication-volume-vs-batch.
func BenchmarkFigure10_Volume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, harness.Figure10())
	}
}
