// Package repro reproduces "ImageNet Training in Minutes" (You, Zhang,
// Hsieh, Demmel, Keutzer; ICPP 2018) — LARS-based large-batch training — as
// a pure-Go library built on the standard library only.
//
// The package is a curated facade over the implementation packages:
//
//	internal/tensor     float32 tensors, GEMM, im2col
//	internal/nn         layers with exact gradients (conv incl. grouped, BN,
//	                    LRN, pooling, residual blocks, label smoothing)
//	internal/models     AlexNet(+BN), ResNet-18/34/50 specs + trainable nets
//	internal/data       SynthImageNet, sharding, augmentation, prefetch loader
//	internal/opt        SGD(+Nesterov), LARS(+LARC), poly/warmup/cosine
//	internal/dist       synchronous data-parallel engine: lockstep goroutine
//	                    workers, central/tree/ring allreduce with exact
//	                    message/byte/round accounting, two-tier hierarchical
//	                    (intra-node + inter-node) composition with per-tier
//	                    accounting, gradient bucketing, 1-bit/FP16 payload
//	                    codecs, deterministic fault injection with exact
//	                    recovery, elastic membership (dead workers evicted,
//	                    shards rebalanced, training continues on P−1)
//	internal/comm       alpha-beta cost model, energy model
//	internal/cluster    calibrated machine profiles + time simulator
//	internal/core       the large-batch Trainer (the paper's recipe)
//	internal/harness    one function per paper table/figure
//	internal/async      asynchronous parameter-server baseline
//	internal/modelpar   model parallelism (Figure 2b)
//	internal/compress   1-bit SGD with error feedback, FP16 exchange
//	internal/checkpoint binary snapshots with bit-identical resume
//	internal/metrics    confusion matrix, EMA, CSV export
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	ds := repro.GenerateSynth(repro.DefaultSynthConfig())
//	res, err := repro.Train(repro.TrainConfig{
//	        Model:        repro.MicroAlexNetFactory(repro.MicroConfig{}),
//	        Batch:        1024,
//	        Epochs:       20,
//	        Method:       repro.LARSWarmup,
//	        WarmupEpochs: 5,
//	}, ds)
package repro

import (
	"repro/internal/async"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/modelpar"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// Core training API.
type (
	// TrainConfig configures one large-batch training run.
	TrainConfig = core.Config
	// TrainResult is the outcome of one run.
	TrainResult = core.Result
	// Method selects the training recipe.
	Method = core.Method
	// EpochStats is one epoch of recorded metrics.
	EpochStats = core.EpochStats
)

// Training recipes.
const (
	// BaselineSGD is the small-batch momentum-SGD reference.
	BaselineSGD = core.BaselineSGD
	// LinearScalingWarmup is Goyal et al.'s large-batch recipe.
	LinearScalingWarmup = core.LinearScalingWarmup
	// LARSWarmup is the paper's recipe: LARS + warmup + poly decay.
	LARSWarmup = core.LARSWarmup
)

// Train runs one configured training run on the dataset.
func Train(cfg TrainConfig, ds *Synth) (*TrainResult, error) { return core.Train(cfg, ds) }

// Data types.
type (
	// Synth is a generated synthetic dataset with train/test splits.
	Synth = data.Synth
	// SynthConfig parameterizes the generator.
	SynthConfig = data.SynthConfig
	// Dataset is an in-memory labelled image set.
	Dataset = data.Dataset
	// Augmenter applies weak augmentation (crop + flip).
	Augmenter = data.Augmenter
)

// GenerateSynth builds the deterministic synthetic ImageNet substitute.
func GenerateSynth(cfg SynthConfig) *Synth { return data.GenerateSynth(cfg) }

// DefaultSynthConfig returns the laptop-scale default dataset.
func DefaultSynthConfig() SynthConfig { return data.DefaultSynthConfig() }

// Progressive-resolution schedules (TrainConfig.Resolutions).
type (
	// ResolutionSchedule maps each training epoch to an input resolution.
	ResolutionSchedule = data.ResolutionSchedule
	// ResolutionPhase is one constant-resolution segment of a schedule.
	ResolutionPhase = data.ResolutionPhase
	// ShapeError is the typed error Dataset gather/resize operations return
	// on shape or index mismatches.
	ShapeError = data.ShapeError
)

// ParseResolutionSchedule parses "12x12@0-4,24x24@5+"-style curricula:
// comma-separated HxW phases with inclusive epoch ranges, the last open.
func ParseResolutionSchedule(s string) (*ResolutionSchedule, error) {
	return data.ParseResolutionSchedule(s)
}

// FixedResolution returns the schedule that trains every epoch at h×w.
func FixedResolution(h, w int) *ResolutionSchedule { return data.FixedResolution(h, w) }

// Model types.
type (
	// Network is a trainable layer stack.
	Network = nn.Network
	// Param is one learnable tensor with its gradient.
	Param = nn.Param
	// Layer is a differentiable module.
	Layer = nn.Layer
	// Tensor is a dense float32 array.
	Tensor = tensor.Tensor
	// ModelSpec is an architecture with parameter/FLOP accounting.
	ModelSpec = models.ModelSpec
	// MicroConfig configures the reduced trainable models.
	MicroConfig = models.MicroConfig
)

// Full-size architecture specs (Table 6).

// AlexNetSpec returns the original grouped AlexNet (61M params).
func AlexNetSpec() *ModelSpec { return models.AlexNetSpec() }

// AlexNetBNSpec returns the batch-norm AlexNet refit used at batch 32K.
func AlexNetBNSpec() *ModelSpec { return models.AlexNetBNSpec() }

// ResNet50Spec returns ResNet-50 (25.6M params, 7.7 GFLOPs/image).
func ResNet50Spec() *ModelSpec { return models.ResNet50Spec() }

// MicroAlexNetSpec returns the cost-accounting spec of the micro AlexNet
// built by MicroAlexNetFactory with the same config.
func MicroAlexNetSpec(cfg MicroConfig) *ModelSpec { return models.MicroAlexNetSpec(cfg) }

// MicroAlexNetFactory returns a model factory for core.Config.Model that
// builds micro-AlexNet replicas seeded per worker.
func MicroAlexNetFactory(cfg MicroConfig) func(seed uint64) *Network {
	return func(seed uint64) *Network {
		c := cfg
		c.Seed = seed
		return models.NewMicroAlexNet(c)
	}
}

// MicroResNetFactory returns a factory building reduced bottleneck ResNets.
func MicroResNetFactory(cfg MicroConfig) func(seed uint64) *Network {
	return func(seed uint64) *Network {
		c := cfg
		c.Seed = seed
		return models.NewMicroResNet(c)
	}
}

// MicroConvNetSpec returns the cost-accounting spec of the GAP-headed
// all-conv micro model built by MicroConvNetFactory with the same config.
func MicroConvNetSpec(cfg MicroConfig) *ModelSpec { return models.MicroConvNetSpec(cfg) }

// MicroConvNetFactory returns a factory building the GAP-headed all-conv
// micro model — the model the progressive-resolution experiments train,
// because its parameter count does not depend on the input size (set
// TrainConfig.Resolutions for the curriculum).
func MicroConvNetFactory(cfg MicroConfig) func(seed uint64) *Network {
	return func(seed uint64) *Network {
		c := cfg
		c.Seed = seed
		return models.NewMicroConvNet(c)
	}
}

// Optimizers and schedules.
type (
	// LARSConfig configures Layer-wise Adaptive Rate Scaling.
	LARSConfig = opt.LARSConfig
	// SGDConfig configures momentum SGD.
	SGDConfig = opt.SGDConfig
	// Schedule maps iteration to learning rate.
	Schedule = opt.Schedule
)

// NewLARS builds a LARS optimizer over params (the paper's algorithm).
func NewLARS(params []*Param, cfg LARSConfig) *opt.LARS { return opt.NewLARS(params, cfg) }

// NewSGD builds a momentum-SGD optimizer over params.
func NewSGD(params []*Param, cfg SGDConfig) *opt.SGD { return opt.NewSGD(params, cfg) }

// LinearScalingRule returns baseLR scaled by batch/baseBatch.
func LinearScalingRule(baseLR float64, baseBatch, batch int) float64 {
	return opt.LinearScalingRule(baseLR, baseBatch, batch)
}

// Distributed engine.
type (
	// Engine drives synchronous data-parallel SGD over worker replicas:
	// W lockstep goroutine workers, shard forward/backward, bucketed
	// gradient allreduce under a chosen topology (optionally overlapped
	// with the backward pass), weight broadcast, optional payload
	// compression and deterministic fault injection.
	Engine = dist.Engine
	// EngineConfig configures the engine (topology, logical shards,
	// bucket size, codec, fault plan).
	EngineConfig = dist.Config
	// Algorithm selects the allreduce pattern.
	Algorithm = dist.Algorithm
	// CommStats counts messages/bytes/latency rounds moved, plus
	// fault-recovery retries and stalls.
	CommStats = dist.CommStats
	// Hierarchy arranges workers into a two-tier node topology: intra-node
	// reduction feeding an inter-node exchange among node leaders.
	Hierarchy = dist.Hierarchy
	// TierStats splits a hierarchical schedule's counters by fabric tier.
	TierStats = dist.TierStats
	// OverlapStats splits a step's communication into the part hidden
	// behind the backward pass and the exposed remainder (see
	// EngineConfig's Overlap field).
	OverlapStats = dist.OverlapStats
	// ReductionPolicy selects the gradient-reduction arithmetic:
	// CanonicalF64 (float64, canonical order — the default) or
	// PairwiseF32 (the fixed-tree float32 kernel; faster, and still
	// bit-identical across worker counts and topologies).
	ReductionPolicy = dist.Reduction
	// ProfileStats splits hot-loop wall time into gemm/im2col/reduce/
	// codec/other phase buckets that sum exactly to the profiled wall
	// time (see EngineConfig's Profile field).
	ProfileStats = dist.ProfileStats
	// FaultPlan injects deterministic drops/stalls into the engine's
	// reduction schedule; recovery is exact. Workers it marks permanently
	// Dead never recover — pair with ElasticPolicy — and Join admits
	// workers (fresh or returning) at a step boundary.
	FaultPlan = dist.FaultPlan
	// ElasticPolicy enables elastic membership: a worker whose recovery
	// fails EvictAfter consecutive steps is evicted, its shards rebalance
	// over the surviving P−1 workers, and training continues at the
	// smaller world size; FaultPlan.Join runs the machine the other way,
	// admitting workers warm-started from a weight broadcast.
	ElasticPolicy = dist.Elastic
	// MembershipStats accounts elastic-membership activity: evictions,
	// joins, rebalanced/joined shards and bytes, steps per world size,
	// and the signed membership event timeline.
	MembershipStats = dist.MembershipStats
	// MembershipEvent is one signed membership transition ("+3@12" is
	// worker 3 joining at step 12) in MembershipStats.Events.
	MembershipEvent = dist.MembershipEvent
	// LocalSGDStats accounts an engine driven through Engine.LocalStep
	// (EngineConfig.SyncEvery = H): local optimizer steps and the full /
	// intra-node averaging rounds that synchronized them. The counters
	// conserve steps exactly: SyncRounds = floor(LocalSteps/H).
	LocalSGDStats = dist.LocalSGDStats
	// Stepper is the per-replica local optimizer Engine.SetLocalSteppers
	// installs for the local-SGD path (opt.SGD and opt.LARS satisfy it).
	Stepper = dist.Stepper
	// WireSizer prices a payload's on-wire bytes under a codec for the
	// local-SGD closed forms (RawWire, FP16Wire; nil means raw float32).
	WireSizer = comm.WireSizer
	// WorkerDeadError is the typed error a permanently dead worker
	// surfaces when elastic membership is disabled.
	WorkerDeadError = dist.WorkerDeadError
	// PayloadCodec compresses gradient exchange payloads on the wire
	// (see FP16Codec and NewOneBitCodec).
	PayloadCodec = dist.Codec
	// FP16Codec exchanges gradients in IEEE half precision.
	FP16Codec = dist.FP16Codec
)

// NewOneBitCodec returns a 1-bit SGD payload codec with error feedback.
func NewOneBitCodec() *dist.OneBitCodec { return dist.NewOneBitCodec() }

// Allreduce runs one reduction + broadcast over the workers' buffers under
// the given topology, accumulating the executed schedule into stats.
func Allreduce(algo Algorithm, bufs [][]float32, stats *CommStats) {
	dist.Reduce(algo, bufs, stats)
	dist.Broadcast(algo, bufs, stats)
}

// NewHierarchy returns the default two-tier worker layout over
// nodes×perNode workers: ring inside each node, tree across node leaders.
func NewHierarchy(nodes, perNode int) Hierarchy { return dist.NewHierarchy(nodes, perNode) }

// HierAllreduce runs one hierarchical reduction + broadcast over the
// workers' buffers (len(bufs) == h.Workers()), accumulating the executed
// schedule per fabric tier into tiers. Values are bit-identical to the flat
// Allreduce; only the accounted schedule differs.
func HierAllreduce(h Hierarchy, bufs [][]float32, tiers *TierStats) {
	dist.HierReduce(h, bufs, tiers)
	dist.HierBroadcast(h, bufs, tiers)
}

// Allreduce algorithms.
const (
	// Central is the parameter-server star pattern.
	Central = dist.Central
	// Tree is the binomial log2(P) pattern of Table 2.
	Tree = dist.Tree
	// Ring is bandwidth-optimal chunked ring allreduce.
	Ring = dist.Ring
)

// Reduction policies (EngineConfig.Reduction / TrainConfig.Reduction).
const (
	// CanonicalF64 sums in float64, canonical shard order (the default).
	CanonicalF64 = dist.CanonicalF64
	// PairwiseF32 sums in float32 through a fixed-shape pairwise tree.
	PairwiseF32 = dist.PairwiseF32
)

// AllreduceWith runs one reduction + broadcast under an explicit reduction
// policy; Allreduce is AllreduceWith at CanonicalF64.
func AllreduceWith(algo Algorithm, policy ReductionPolicy, bufs [][]float32, stats *CommStats) {
	dist.ReduceWith(algo, policy, bufs, stats)
	dist.Broadcast(algo, bufs, stats)
}

// NewEngine builds a synchronous data-parallel engine over replicas.
func NewEngine(cfg EngineConfig, replicas []*Network) *Engine { return dist.NewEngine(cfg, replicas) }

// Cluster simulation.
type (
	// Machine is a calibrated device profile.
	Machine = cluster.Machine
	// ClusterConfig is a device set joined by one fabric.
	ClusterConfig = cluster.Cluster
	// Estimate is a simulated training time.
	Estimate = cluster.Estimate
	// NetworkProfile is an alpha-beta fabric model.
	NetworkProfile = comm.Network
)

// Calibrated machines from the paper's hardware.
var (
	TeslaK20  = cluster.TeslaK20
	TeslaM40  = cluster.TeslaM40
	TeslaP100 = cluster.TeslaP100
	KNL7250   = cluster.KNL7250
	Xeon8160  = cluster.Xeon8160
)

// Simulate prices one training run on a cluster (Tables 2, 8, 9).
func Simulate(c ClusterConfig, spec *ModelSpec, batch, epochs, datasetSize int) Estimate {
	return cluster.Simulate(c, spec, batch, epochs, datasetSize)
}

// ElasticEstimate prices a run whose fleet degrades mid-training.
type ElasticEstimate = cluster.ElasticEstimate

// SimulateElastic prices a fixed-epoch run during which the fleet shrinks:
// each entry of evictAtFrac loses one device at that fraction of the run's
// iterations, the survivors absorb the work, and the result reports the
// per-phase timeline plus the time-to-accuracy cost versus a healthy fleet.
func SimulateElastic(c ClusterConfig, spec *ModelSpec, batch, epochs, datasetSize int, evictAtFrac []float64) ElasticEstimate {
	return cluster.SimulateElastic(c, spec, batch, epochs, datasetSize, evictAtFrac)
}

// AutoscalePolicy is the control law the autoscaler replays a traffic
// trace through: target-utilization and/or queue-depth driven, with
// min/max bounds, per-decision step and cooldown hysteresis.
type AutoscalePolicy = cluster.AutoscalePolicy

// TrafficPoint is one interval of an autoscaler trace: offered load plus
// devices preempted out from under the fleet.
type TrafficPoint = cluster.TrafficPoint

// AutoscaleEstimate reports an autoscaler replay: world-size timeline,
// membership churn, reaction time, per-phase closed-form comm schedules
// and the dollar cost against the static-max fleet.
type AutoscaleEstimate = cluster.AutoscaleEstimate

// SimulateAutoscale replays a traffic/preemption trace through the
// autoscaling control plane: each interval the fleet absorbs preemptions,
// serves the offered load (queueing the excess), and the policy decides
// the next world size, priced with the same per-iteration phase costs
// SimulateElastic uses.
func SimulateAutoscale(c ClusterConfig, spec *ModelSpec, batch int, intervalSec float64, trace []TrafficPoint, pol AutoscalePolicy) AutoscaleEstimate {
	return cluster.SimulateAutoscale(c, spec, batch, intervalSec, trace, pol)
}

// ProgressiveEstimate prices a run under a resolution schedule.
type ProgressiveEstimate = cluster.ProgressiveEstimate

// SimulateProgressive prices a fixed-epoch run under a per-epoch resolution
// schedule: each phase's compute is repriced with the spec replayed at the
// phase resolution while communication stays at the canonical weight
// volume. The result reports the phase timeline and the wall-clock and
// FLOP savings versus the fixed-resolution run — the analytic face of
// TrainConfig.Resolutions.
func SimulateProgressive(c ClusterConfig, spec *ModelSpec, batch, epochs, datasetSize int, sched *ResolutionSchedule) ProgressiveEstimate {
	return cluster.SimulateProgressive(c, spec, batch, epochs, datasetSize, sched)
}

// LocalSGDEstimate prices a run that trades communication for computation:
// workers step locally and average weights every H steps (TrainConfig.
// SyncEvery), amortizing the sync cost by 1/H.
type LocalSGDEstimate = cluster.LocalSGDEstimate

// SimulateLocalSGD prices one local-SGD run: syncEvery local steps between
// full weight averages, optionally an intra-node average every
// intraSyncEvery steps on hierarchical clusters. syncEvery = 1 reproduces
// the non-overlapped every-step Simulate exactly.
func SimulateLocalSGD(c ClusterConfig, spec *ModelSpec, batch, epochs, datasetSize, syncEvery, intraSyncEvery int) LocalSGDEstimate {
	return cluster.SimulateLocalSGD(c, spec, batch, epochs, datasetSize, syncEvery, intraSyncEvery)
}

// LocalSGDCurve sweeps the synchronization period: one estimate per H in
// hs — the throughput-vs-H curve `simulate -sync-sweep` prints.
func LocalSGDCurve(c ClusterConfig, spec *ModelSpec, batch, epochs, datasetSize int, hs []int) []LocalSGDEstimate {
	return cluster.LocalSGDCurve(c, spec, batch, epochs, datasetSize, hs)
}

// ExpectedLocalSGDStats returns the closed-form communication counters of
// a flat local-SGD run — floor(steps/syncEvery) rounds, each one reduce of
// the wire payload plus one broadcast of the raw weights per bucket — which
// match an engine driven through Engine.LocalStep counter-for-counter.
// RawWire and FP16Wire are the stock wire sizers (nil = raw float32).
func ExpectedLocalSGDStats(algo Algorithm, p, syncEvery int, steps int64, nelems, bucketElems int, wire WireSizer) CommStats {
	return comm.ExpectedLocalSGDStats(algo, p, syncEvery, steps, nelems, bucketElems, wire)
}

// ExpectedLocalSGDTierStats is the hierarchical twin: full two-tier rounds
// every syncEvery steps plus intra-node-only rounds every intraSyncEvery
// steps in between, split by fabric tier.
func ExpectedLocalSGDTierStats(h Hierarchy, syncEvery, intraSyncEvery int, steps int64, nelems, bucketElems int, wire WireSizer) TierStats {
	return comm.ExpectedLocalSGDTierStats(h, syncEvery, intraSyncEvery, steps, nelems, bucketElems, wire)
}

// Stock wire sizers for the local-SGD closed forms.
var (
	// RawWire prices payloads as raw float32: 4 bytes/coordinate.
	RawWire = comm.RawWire
	// FP16Wire prices payloads through FP16Codec: 2 bytes/coordinate.
	FP16Wire = comm.FP16Wire
)

// DGX1 returns one 8xP100 DGX-1 station.
func DGX1() ClusterConfig { return cluster.DGX1() }

// DGXPod returns n DGX-1 stations priced hierarchically: NVLink ring
// inside each chassis, FDR InfiniBand tree across station leaders.
func DGXPod(n int) ClusterConfig { return cluster.DGXPod(n) }

// KNLCluster returns n KNL nodes on Omni-Path.
func KNLCluster(n int) ClusterConfig { return cluster.KNLCluster(n) }

// CPUCluster returns n Skylake nodes on Omni-Path.
func CPUCluster(n int) ClusterConfig { return cluster.CPUCluster(n) }

// Full-size trainable networks (parameter counts match the specs exactly).

// NewAlexNet builds the original grouped/LRN AlexNet (61M params).
func NewAlexNet(seed uint64, classes int) *Network { return models.NewAlexNet(rng.New(seed), classes) }

// NewAlexNetBN builds the batch-norm AlexNet refit (62.4M params).
func NewAlexNetBN(seed uint64, classes int) *Network {
	return models.NewAlexNetBN(rng.New(seed), classes)
}

// NewResNet18 builds ResNet-18 (11.7M params).
func NewResNet18(seed uint64, classes int) *Network {
	return models.NewResNet18(rng.New(seed), classes)
}

// NewResNet34 builds ResNet-34 (21.8M params).
func NewResNet34(seed uint64, classes int) *Network {
	return models.NewResNet34(rng.New(seed), classes)
}

// NewResNet50 builds ResNet-50 (25.6M params).
func NewResNet50(seed uint64, classes int) *Network {
	return models.NewResNet50(rng.New(seed), classes)
}

// ResNet18Spec returns the ResNet-18 architecture spec.
func ResNet18Spec() *ModelSpec { return models.ResNet18Spec() }

// ResNet34Spec returns the ResNet-34 architecture spec.
func ResNet34Spec() *ModelSpec { return models.ResNet34Spec() }

// Checkpointing.
type (
	// Checkpoint is a serializable model + optimizer snapshot.
	Checkpoint = checkpoint.Checkpoint
)

// CheckpointFromNetwork captures all parameter values of net at a step.
func CheckpointFromNetwork(net *Network, step int64) *Checkpoint {
	return checkpoint.FromNetwork(net, step)
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) { return checkpoint.Load(path) }

// Asynchronous baseline (the parameter-server approach the paper rejects).
type (
	// AsyncConfig configures a Downpour-style asynchronous run.
	AsyncConfig = async.Config
	// AsyncResult summarizes it (accuracy, staleness statistics).
	AsyncResult = async.Result
)

// AsyncTrain runs asynchronous parameter-server SGD (stale gradients).
func AsyncTrain(cfg AsyncConfig, ds *Synth) (*AsyncResult, error) { return async.Train(cfg, ds) }

// Gradient compression.
type (
	// Quantizer carries 1-bit SGD error-feedback state.
	Quantizer = compress.Quantizer
)

// NewQuantizer builds a 1-bit gradient quantizer for n coordinates.
func NewQuantizer(n int) *Quantizer { return compress.NewQuantizer(n) }

// Model parallelism (Figure 2b).
type (
	// ShardedLinear is a fully-connected layer partitioned across shards.
	ShardedLinear = modelpar.ShardedLinear
)

// Metrics.
type (
	// ConfusionMatrix tallies per-class predictions.
	ConfusionMatrix = metrics.ConfusionMatrix
	// EMA is an exponentially-weighted moving average.
	EMA = metrics.EMA
)

// NewConfusionMatrix returns an empty k-class confusion matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix { return metrics.NewConfusionMatrix(k) }

// Input pipeline.
type (
	// Loader prefetches augmented batches on a background goroutine.
	Loader = data.Loader
	// LoaderConfig configures a Loader.
	LoaderConfig = data.LoaderConfig
	// DataBatch is one assembled batch.
	DataBatch = data.Batch
)

// NewLoader starts a prefetching batch loader over ds.
func NewLoader(ds *Dataset, cfg LoaderConfig) *Loader { return data.NewLoader(ds, cfg) }

// Serving tier: the dynamic-batching inference engine over a replica fleet.
type (
	// ServeConfig is one serving configuration (batch window, queue bound,
	// replica pool, service pricing).
	ServeConfig = serve.Config
	// ServeStats holds the exact counters of one scheduler run.
	ServeStats = serve.Stats
	// ServeTrace is a seeded arrival sequence.
	ServeTrace = serve.Trace
	// ServeReport is the full outcome of one scheduler run.
	ServeReport = serve.Report
	// ServePool couples the scheduler to real model replicas.
	ServePool = serve.Pool
	// ServiceModel prices one batch forward pass in virtual ticks.
	ServiceModel = serve.ServiceModel
	// Ticks is virtual time (1 tick = 1µs).
	Ticks = serve.Ticks
	// ServeEstimate is a closed-form fleet-sizing answer.
	ServeEstimate = cluster.ServeEstimate
)

// ErrOverloaded is the serving tier's typed admission-control rejection.
var ErrOverloaded = serve.ErrOverloaded

// ServeSimulate runs the dynamic batcher over a trace on the virtual clock.
func ServeSimulate(cfg ServeConfig, trace ServeTrace) (*ServeReport, error) {
	return serve.Simulate(cfg, trace)
}

// UniformServeTrace generates the deterministic-clock trace (fixed gap).
func UniformServeTrace(n int, gap Ticks, images int) ServeTrace {
	return serve.UniformTrace(n, gap, images)
}

// PoissonServeTrace generates seeded open-loop Poisson traffic.
func PoissonServeTrace(n int, meanGap Ticks, images int, seed uint64) ServeTrace {
	return serve.PoissonTrace(n, meanGap, images, seed)
}

// BurstyServeTrace generates seeded on/off traffic.
func BurstyServeTrace(n, onLen int, onGap, offGap Ticks, images int, seed uint64) ServeTrace {
	return serve.BurstyTrace(n, onLen, onGap, offGap, images, seed)
}

// NewServePool builds a replica pool; PoolFromCheckpoint loads trained
// weights into every replica.
func NewServePool(cfg ServeConfig, factory func() *Network) (*ServePool, error) {
	return serve.NewPool(cfg, factory)
}

// ServePoolFromCheckpoint builds the pool from a training checkpoint — the
// train→serve artifact handoff.
func ServePoolFromCheckpoint(cfg ServeConfig, factory func() *Network, c *Checkpoint) (*ServePool, error) {
	return serve.PoolFromCheckpoint(cfg, factory, c)
}

// ExpectedServeStats prices the uniform-gap regime counter-for-counter.
func ExpectedServeStats(cfg ServeConfig, n int, gap Ticks) (ServeStats, error) {
	return comm.ExpectedServeStats(cfg, n, gap)
}

// SimulateServe sizes a replica fleet for an offered rate and p99 target.
func SimulateServe(m Machine, spec *ModelSpec, ratePerSec float64, maxBatch int, maxDelay, p99Target Ticks) (ServeEstimate, error) {
	return cluster.SimulateServe(m, spec, ratePerSec, maxBatch, maxDelay, p99Target)
}
