// Commstudy demonstrates the communication analysis of the paper (Tables
// 11-12, Figures 8-10) with both the analytic model and the repository's
// real in-process allreduce engine, cross-checking one against the other.
//
//	go run ./examples/commstudy
package main

import (
	"fmt"

	"repro"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/rng"
)

func main() {
	resnet := repro.ResNet50Spec()
	const imagenet, epochs = 1280000, 90

	fmt.Println("== Figures 8-10: larger batches communicate less (fixed epochs) ==")
	fmt.Printf("%-8s %-12s %-16s %-14s\n", "batch", "iterations", "messages(P=512)", "volume")
	for b := 512; b <= 65536; b *= 4 {
		iters := comm.Iterations(epochs, imagenet, b)
		msgs := comm.TotalMessages(dist.Tree, 512, epochs, imagenet, b)
		vol := comm.TotalVolumeBytes(resnet.WeightBytes(), epochs, imagenet, b)
		fmt.Printf("%-8d %-12d %-16d %.2f TB\n", b, iters, msgs, float64(vol)/1e12)
	}

	fmt.Println("\n== Table 11: one ResNet-50 gradient allreduce (P=512) per fabric ==")
	for _, n := range comm.Table11() {
		t := n.AllreduceTime(dist.Ring, 512, resnet.WeightBytes())
		fmt.Printf("  %-28s alpha=%.1e beta=%.1e  ring allreduce: %.1f ms\n", n.Name, n.Alpha, n.Beta, 1e3*t)
	}

	fmt.Println("\n== Real allreduce vs analytic message counts ==")
	// Run the actual in-process reduction engine on a gradient-sized buffer
	// and compare its observed counters with the closed-form model.
	const workers = 8
	weights := models.MicroAlexNetSpec(models.MicroConfig{Classes: 8, InH: 16, Width: 8}).ParamCount()
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		bufs := make([][]float32, workers)
		r := rng.New(1)
		for i := range bufs {
			bufs[i] = make([]float32, weights)
			for j := range bufs[i] {
				bufs[i][j] = r.NormFloat32()
			}
		}
		var stats dist.CommStats
		dist.Reduce(algo, bufs, &stats)
		dist.Broadcast(algo, bufs, &stats)
		model := comm.MessagesPerAllreduce(algo, workers)
		fmt.Printf("  %-8s observed %4d messages, %6.2f MB moved; model says %4d messages\n",
			algo, stats.Messages, float64(stats.Bytes)/1e6, model)
	}

	fmt.Println("\n== Table 12: energy — data movement dwarfs arithmetic ==")
	for _, op := range comm.Table12() {
		fmt.Printf("  %-26s %-13s %6.1f pJ\n", op.Name, op.Kind, op.PJ)
	}
	flops := int64(256) * resnet.TrainFLOPsPerImage()
	dram := comm.DRAMAccessesPerIteration(resnet.ParamCount())
	fmt.Printf("\n  one B=256 ResNet-50 iteration: compute %.1f J, weight DRAM traffic %.2f J\n",
		comm.EnergyEstimate(flops, 0), comm.EnergyEstimate(0, dram))
	fmt.Println("  -> fewer iterations (larger batches) save communication energy, not flops")
}
