// Commstudy demonstrates the communication analysis of the paper (Tables
// 11-12, Figures 8-10) with both the analytic model and the repository's
// real in-process allreduce engine, cross-checking one against the other.
//
//	go run ./examples/commstudy
package main

import (
	"fmt"
	"math"

	"repro"
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
)

// seq returns [0, 1, ..., n).
func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func main() {
	resnet := repro.ResNet50Spec()
	const imagenet, epochs = 1280000, 90

	fmt.Println("== Figures 8-10: larger batches communicate less (fixed epochs) ==")
	fmt.Printf("%-8s %-12s %-16s %-14s\n", "batch", "iterations", "messages(P=512)", "volume")
	for b := 512; b <= 65536; b *= 4 {
		iters := comm.Iterations(epochs, imagenet, b)
		msgs := comm.TotalMessages(dist.Tree, 512, epochs, imagenet, b)
		vol := comm.TotalVolumeBytes(resnet.WeightBytes(), epochs, imagenet, b)
		fmt.Printf("%-8d %-12d %-16d %.2f TB\n", b, iters, msgs, float64(vol)/1e12)
	}

	fmt.Println("\n== Table 11: one ResNet-50 gradient allreduce (P=512) per fabric ==")
	for _, n := range comm.Table11() {
		t := n.AllreduceTime(dist.Ring, 512, resnet.WeightBytes())
		fmt.Printf("  %-28s alpha=%.1e beta=%.1e  ring allreduce: %.1f ms\n", n.Name, n.Alpha, n.Beta, 1e3*t)
	}

	fmt.Println("\n== Real allreduce vs analytic message counts ==")
	// Run the actual in-process reduction engine on a gradient-sized buffer
	// and compare its observed counters with the closed-form model.
	const workers = 8
	weights := models.MicroAlexNetSpec(models.MicroConfig{Classes: 8, InH: 16, Width: 8}).ParamCount()
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		bufs := make([][]float32, workers)
		r := rng.New(1)
		for i := range bufs {
			bufs[i] = make([]float32, weights)
			for j := range bufs[i] {
				bufs[i][j] = r.NormFloat32()
			}
		}
		var stats dist.CommStats
		dist.Reduce(algo, bufs, &stats)
		dist.Broadcast(algo, bufs, &stats)
		model := comm.ExpectedStats(algo, workers, int64(4*weights))
		fmt.Printf("  %-8s observed %4d messages %6.2f MB %3d rounds; model says %4d messages %6.2f MB %3d rounds\n",
			algo, stats.Messages, float64(stats.Bytes)/1e6, stats.Steps,
			model.Messages, float64(model.Bytes)/1e6, model.Steps)
	}

	fmt.Println("\n== Engine: one real training step per algorithm (P=4, micro-AlexNet) ==")
	// Drive the full synchronous engine — shard forward/backward, bucketed
	// gradient allreduce, weight broadcast — and report the per-step
	// counters next to the analytic schedule and its alpha-beta price.
	ds := repro.GenerateSynth(data.SynthConfig{
		Classes: 8, TrainSize: 256, TestSize: 64, C: 3, H: 16, W: 16,
		Noise: 0.3, MaxShift: 2, Flip: true, Seed: 11,
	})
	x, labels := ds.Train.MustGather(seq(64))
	factory := repro.MicroAlexNetFactory(models.MicroConfig{Classes: 8, InH: 16, Width: 8})
	fmt.Printf("  %-8s %-28s %-28s %s\n", "algo", "grad reduce (msgs/MB/rounds)", "weight bcast (msgs/MB/rounds)", "FDR time/step")
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		replicas := make([]*nn.Network, 4)
		for i := range replicas {
			replicas[i] = factory(uint64(i) + 1)
		}
		e := dist.NewEngine(dist.Config{Algo: algo}, replicas)
		if _, err := e.ComputeGradient(x, labels); err != nil {
			panic(err)
		}
		reduce := e.StepStats()
		if err := e.BroadcastWeights(); err != nil {
			panic(err)
		}
		total := e.StepStats()
		bcast := total
		bcast.Messages -= reduce.Messages
		bcast.Bytes -= reduce.Bytes
		bcast.Steps -= reduce.Steps
		fmt.Printf("  %-8s %4d / %6.2f / %2d          %4d / %6.2f / %2d          %.2f ms\n",
			algo, reduce.Messages, float64(reduce.Bytes)/1e6, reduce.Steps,
			bcast.Messages, float64(bcast.Bytes)/1e6, bcast.Steps,
			1e3*comm.MellanoxFDR.TimeFromStats(total))
		e.Close()
	}

	fmt.Println("\n== Hierarchical allreduce: composing fabrics (8 nodes x 8 workers) ==")
	// The paper's fastest clusters reduce inside the node on a fast local
	// fabric before touching the cross-node links. Run the composed
	// collective for real, cross-check the per-tier counters against the
	// closed forms, and price flat-vs-hierarchical on NVLink + FDR.
	{
		h := dist.NewHierarchy(8, 8)
		bufs := make([][]float32, h.Workers())
		r := rng.New(2)
		for i := range bufs {
			bufs[i] = make([]float32, weights)
			for j := range bufs[i] {
				bufs[i][j] = r.NormFloat32()
			}
		}
		var tiers dist.TierStats
		dist.HierReduce(h, bufs, &tiers)
		dist.HierBroadcast(h, bufs, &tiers)
		model := comm.ExpectedTierStats(h, int64(4*weights))
		fmt.Printf("  %-12s observed %5d messages %6.2f MB %3d rounds; model says %5d messages %6.2f MB %3d rounds\n",
			"intra tier", tiers.Intra.Messages, float64(tiers.Intra.Bytes)/1e6, tiers.Intra.Steps,
			model.Intra.Messages, float64(model.Intra.Bytes)/1e6, model.Intra.Steps)
		fmt.Printf("  %-12s observed %5d messages %6.2f MB %3d rounds; model says %5d messages %6.2f MB %3d rounds\n",
			"inter tier", tiers.Inter.Messages, float64(tiers.Inter.Bytes)/1e6, tiers.Inter.Steps,
			model.Inter.Messages, float64(model.Inter.Bytes)/1e6, model.Inter.Steps)
		payload := resnet.WeightBytes()
		flat := comm.MellanoxFDR.AllreduceTime(dist.Ring, h.Workers(), payload)
		hier := comm.HierarchicalAllreduceTime(cluster.NVLinkHybrid, comm.MellanoxFDR,
			dist.Hierarchy{Nodes: 8, PerNode: 8, Intra: dist.Ring, Inter: dist.Ring}, payload)
		fmt.Printf("  one ResNet-50 allreduce over 64 P100s: flat FDR ring %.1f ms, NVLink-intra + FDR-inter ring %.1f ms\n",
			1e3*flat, 1e3*hier)
	}

	fmt.Println("\n== Overlap: bucket reductions firing inside the backward pass ==")
	// With Config.Overlap the engine reduces each gradient bucket the
	// moment its layers' gradients are final on every shard — while earlier
	// layers are still back-propagating — instead of after the full
	// backward. Values are bit-identical; the schedule splits into hidden
	// vs exposed, cross-checked against comm's closed form.
	{
		replicas := make([]*nn.Network, 4)
		for i := range replicas {
			replicas[i] = factory(uint64(i) + 1)
		}
		nparams := replicas[0].NumParams()
		var paramElems []int
		for _, p := range replicas[0].Params() {
			paramElems = append(paramElems, p.Numel())
		}
		const buckets = 6
		bucketElems := (nparams + buckets - 1) / buckets
		e := dist.NewEngine(dist.Config{Algo: dist.Ring, BucketElems: bucketElems, Overlap: true}, replicas)
		if _, err := e.ComputeGradient(x, labels); err != nil {
			panic(err)
		}
		if err := e.BroadcastWeights(); err != nil {
			panic(err)
		}
		ov := e.StepOverlapStats()
		model := comm.ExpectedOverlapStats(dist.Ring, 4, paramElems, bucketElems)
		e.Close()
		fmt.Printf("  measured: %d rounds / %.2f KB hidden inside the backward, %d rounds / %.2f KB exposed (%.0f%% of bytes hidden)\n",
			ov.HiddenRounds, float64(ov.HiddenBytes)/1e3, ov.ExposedRounds, float64(ov.ExposedBytes)/1e3, 100*ov.HiddenByteFrac())
		fmt.Printf("  model:    comm.ExpectedOverlapStats matches: %v\n", ov == model)

		// Price the same idea at ResNet-50 scale: 16 buckets pipelined
		// against a 150 ms backward window, flat FDR ring vs the two-tier
		// NVLink/FDR composition with cross-tier bucket pipelining.
		const backward = 0.150
		bb := comm.EqualBuckets(resnet.WeightBytes(), 16)
		serial := comm.MellanoxFDR.AllreduceTime(dist.Ring, 64, resnet.WeightBytes())
		exposed := comm.MellanoxFDR.OverlappedAllreduceTime(dist.Ring, 64, bb, backward)
		h2 := dist.Hierarchy{Nodes: 8, PerNode: 8, Intra: dist.Ring, Inter: dist.Ring}
		hserial := comm.HierarchicalAllreduceTime(cluster.NVLinkHybrid, comm.MellanoxFDR, h2, resnet.WeightBytes())
		hexposed := comm.OverlappedHierAllreduceTime(cluster.NVLinkHybrid, comm.MellanoxFDR, h2, bb, backward)
		fmt.Printf("  ResNet-50 over 64 P100s, 150ms backward window: flat FDR ring %.1fms serial -> %.1fms exposed;\n", 1e3*serial, 1e3*exposed)
		fmt.Printf("  NVLink-intra + FDR-inter %.1fms serial -> %.1fms exposed (inter exchange of bucket k rides the intra reduce of bucket k+1)\n", 1e3*hserial, 1e3*hexposed)
	}

	fmt.Println("\n== Elastic membership: evicting a dead worker mid-run ==")
	// Preemptible fleets lose nodes for good. With Config.Elastic the
	// engine evicts a worker whose recovery keeps failing, rebalances the
	// shard spans over the survivors, re-broadcasts the weights, and keeps
	// training at P-1 — with every post-eviction step's schedule matching
	// the closed form of a fresh smaller fleet (ExpectedStatsAt).
	{
		const workers = 4
		replicas := make([]*nn.Network, workers)
		for i := range replicas {
			replicas[i] = factory(uint64(i) + 1)
		}
		payload := int64(4 * replicas[0].NumParams())
		e := dist.NewEngine(dist.Config{
			Algo:    dist.Ring,
			Faults:  &dist.FaultPlan{Dead: map[int]int64{3: 2}}, // worker 3 reclaimed at step 2
			Elastic: &dist.Elastic{EvictAfter: 2},               // declared dead after 2 missed recoveries
		}, replicas)
		fmt.Printf("  %-6s %-7s %-9s %-9s %-9s %s\n", "step", "world", "rounds", "retries", "bytes", "event")
		for step := 0; step < 6; step++ {
			before := e.LiveWorkers()
			if _, err := e.ComputeGradient(x, labels); err != nil {
				panic(err)
			}
			if err := e.BroadcastWeights(); err != nil {
				panic(err)
			}
			s := e.StepStats()
			event := ""
			switch {
			case e.LiveWorkers() < before:
				event = "worker 3 evicted; shards rebalanced, weights re-broadcast"
			case s.Retries > 0:
				event = "worker 3 unreachable: survivor recomputed its shards"
			}
			fmt.Printf("  %-6d %-7d %-9d %-9d %-9d %s\n", step, before, s.Steps, s.Retries, s.Bytes, event)
		}
		m := e.Membership()
		post := e.StepStats()
		model := comm.ExpectedStatsAt(dist.Ring, workers, int(m.Evictions), payload)
		fmt.Printf("  timeline %s: %d eviction, %d shard(s) rebalanced, %d resync bytes\n",
			m.Timeline(), m.Evictions, m.RebalancedShards, m.RebalancedBytes)
		fmt.Printf("  post-eviction step == comm.ExpectedStatsAt(ring, P=%d, evicted=%d): %v\n",
			workers, m.Evictions, post == model)
		e.Close()
	}

	fmt.Println("\n== Hot-loop kernels: canonical-f64 vs pairwise-f32 reduction ==")
	// The reduction arithmetic is the one policy knob the reproducibility
	// contract leaves open (dist.Config.Reduction). Run both over the same
	// buffers: values differ only by rounding, every topology stays
	// bit-identical under either, and the fixed-tree pairwise-f32 kernel
	// is the faster sum (see the HotLoop study in EXPERIMENTS.md and
	// BenchmarkReduction for the measured throughputs).
	{
		const workers = 8
		mkBufs := func() [][]float32 {
			r := rng.New(3)
			bufs := make([][]float32, workers)
			for i := range bufs {
				bufs[i] = make([]float32, weights)
				for j := range bufs[i] {
					bufs[i][j] = r.NormFloat32()
				}
			}
			return bufs
		}
		results := map[dist.Reduction][]float32{}
		for _, policy := range []dist.Reduction{dist.CanonicalF64, dist.PairwiseF32} {
			var ref []float32
			for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
				bufs := mkBufs()
				dist.ReduceWith(algo, policy, bufs, nil)
				if ref == nil {
					ref = bufs[0]
					continue
				}
				for i := range ref {
					if ref[i] != bufs[0][i] {
						panic(fmt.Sprintf("%v: %v reduction differs across algorithms", policy, algo))
					}
				}
			}
			results[policy] = ref
			fmt.Printf("  %-14s bit-identical across central/tree/ring: true\n", policy)
		}
		var maxDiff float64
		canon, pair := results[dist.CanonicalF64], results[dist.PairwiseF32]
		for i := range canon {
			if d := math.Abs(float64(canon[i] - pair[i])); d > maxDiff {
				maxDiff = d
			}
		}
		fmt.Printf("  max |canonical - pairwise| over %d coords: %.2e (pure rounding; pairwise error is O(log P)*eps)\n",
			weights, maxDiff)
	}

	fmt.Println("\n== Local SGD: trading communication for computation ==")
	// With Config.SyncEvery = H every worker steps its own optimizer on its
	// own shard gradients and the fleet averages weights only every H-th
	// step — the collective volume scales by exactly 1/H. Drive the real
	// engine for 8 steps at H=4 and hold its counters against the closed
	// form, then price the H-sweep at ResNet-50 scale.
	{
		const workers, steps, syncEvery = 4, 8, 4
		replicas := make([]*nn.Network, workers)
		steppers := make([]dist.Stepper, workers)
		for i := range replicas {
			replicas[i] = factory(uint64(i) + 1)
			steppers[i] = opt.NewSGD(replicas[i].Params(), opt.SGDConfig{Momentum: 0.9})
		}
		nparams := replicas[0].NumParams()
		e := dist.NewEngine(dist.Config{Algo: dist.Ring, SyncEvery: syncEvery}, replicas)
		e.SetLocalSteppers(steppers)
		init := e.Stats() // the construction broadcast, paid once
		for step := 0; step < steps; step++ {
			if _, err := e.LocalStep(x, labels, 0.05); err != nil {
				panic(err)
			}
		}
		measured := e.Stats()
		measured.Messages -= init.Messages
		measured.Bytes -= init.Bytes
		measured.Steps -= init.Steps
		model := comm.ExpectedLocalSGDStats(dist.Ring, workers, syncEvery, steps, nparams, 0, nil)
		lsgd := e.LocalSGD()
		e.Close()
		fmt.Printf("  %d local steps at H=%d: %d sync rounds, %d messages / %.2f MB on the wire\n",
			lsgd.LocalSteps, syncEvery, lsgd.SyncRounds, measured.Messages, float64(measured.Bytes)/1e6)
		fmt.Printf("  comm.ExpectedLocalSGDStats matches counter-for-counter: %v (volume = 1/%d of every-step)\n",
			measured == model, syncEvery)

		// The tradeoff at scale: ResNet-50 on 64 KNL nodes, batch 2048.
		c := cluster.KNLCluster(64)
		fmt.Printf("  ResNet-50 on 64x KNL, B=2048 (1 epoch): H=1..8 sweep\n")
		for _, est := range cluster.LocalSGDCurve(c, resnet, 2048, 1, imagenet, []int{1, 2, 4, 8}) {
			fmt.Printf("    H=%-3d %7.0f img/s  %.2fx  comm %7.1f GB\n",
				est.SyncEvery, est.ImagesSec, est.Speedup, float64(est.Comm.Bytes)/(1<<30))
		}
	}

	fmt.Println("\n== Table 12: energy — data movement dwarfs arithmetic ==")
	for _, op := range comm.Table12() {
		fmt.Printf("  %-26s %-13s %6.1f pJ\n", op.Name, op.Kind, op.PJ)
	}
	flops := int64(256) * resnet.TrainFLOPsPerImage()
	dram := comm.DRAMAccessesPerIteration(resnet.ParamCount())
	fmt.Printf("\n  one B=256 ResNet-50 iteration: compute %.1f J, weight DRAM traffic %.2f J\n",
		comm.EnergyEstimate(flops, 0), comm.EnergyEstimate(0, dram))
	fmt.Println("  -> fewer iterations (larger batches) save communication energy, not flops")
}
