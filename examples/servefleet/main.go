// Servefleet walks the serving-tier story end to end: how wide a batching
// window turns request latency into hardware efficiency (the inference-side
// twin of the paper's large-batch argument), how the closed form prices the
// scheduler counter-for-counter, how many replicas a P100 fleet needs for a
// target rate and p99, and what a bounded queue does to a burst — overload
// as admission control, not an outage.
//
//	go run ./examples/servefleet
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	svc := repro.ServiceModel{Base: 100, PerImage: 25}

	// 1. The batch-window tradeoff at a fixed offered rate: widening
	// MaxDelay grows the steady batch, amortizing the per-batch cost —
	// throughput per replica climbs while p99 pays the wait.
	fmt.Println("batch window vs latency at 10k req/s (gap 100µs), S(b) = 100 + 25b µs:")
	for _, d := range []repro.Ticks{0, 200, 500, 1000, 2000} {
		cfg := repro.ServeConfig{MaxBatch: 32, MaxDelay: d, Replicas: 1, Service: svc}
		rep, err := repro.ServeSimulate(cfg, repro.UniformServeTrace(4000, 100, 8))
		if err != nil {
			log.Fatal(err)
		}
		s := rep.Stats
		// D=0 means no batching: S(1)=125µs per request against a 100µs
		// gap saturates the replica, and the closed form refuses the
		// regime — the whole reason the batching window exists.
		model := "DRIFT"
		if want, err := repro.ExpectedServeStats(cfg, 4000, 100); err != nil {
			model = "n/a (saturated)"
		} else if s.Equal(want) {
			model = "exact"
		}
		fmt.Printf("  D=%5dµs: mean batch %5.2f  p50 %5dµs  p99 %5dµs  busy %4.1f%%  closed form %s\n",
			d, s.MeanBatch(), s.P50, s.P99, 100*float64(s.BusyTicks)/float64(s.Makespan), model)
	}

	// 2. Fleet sizing from the same closed form: replicas a P100 needs for
	// the micro AlexNet at growing offered rates, p99 target 2ms.
	spec := repro.MicroAlexNetSpec(repro.MicroConfig{Classes: 8, InH: 24, Width: 8})
	fmt.Println("\nP100 fleet sizing for micro-alexnet, window K=16 D=800µs, p99 target 2ms:")
	for _, rate := range []float64{10_000, 100_000, 1_000_000} {
		est, err := repro.SimulateServe(repro.TeslaP100, spec, rate, 16, 800, 2000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", est)
	}

	// 3. Overload: a burst beyond the waiting room is shed with the typed
	// rejection; a second replica drains faster and admits more.
	fmt.Println("\noverload: bursts of 64 at 100k req/s into a 32-slot queue:")
	trace := repro.BurstyServeTrace(4000, 64, 10, 10000, 8, 1)
	for _, r := range []int{1, 2} {
		cfg := repro.ServeConfig{MaxBatch: 8, MaxDelay: 2000, QueueCap: 32, Replicas: r, Service: svc}
		rep, err := repro.ServeSimulate(cfg, trace)
		if err != nil {
			log.Fatal(err)
		}
		s := rep.Stats
		fmt.Printf("  R=%d: accepted %4d  rejected %4d (ErrOverloaded)  queue hwm %2d  p99 %dµs\n",
			r, s.Accepted, s.Rejected, s.QueueHWM, s.P99)
	}
	fmt.Println("\nevery number above is exact virtual-clock arithmetic: rerunning this binary reproduces it bit-for-bit.")
}
