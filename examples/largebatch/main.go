// Largebatch reproduces the paper's headline phenomenon (Figure 1 /
// Figure 4) end to end: as the batch size grows under a fixed epoch budget,
// the standard recipe (linear LR scaling + warmup, Goyal et al. 2017)
// collapses, while LARS + warmup holds accuracy near the small-batch
// baseline.
//
//	go run ./examples/largebatch
//
// Expect ~3-4 minutes of real training on a couple of cores.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultSynthConfig()
	cfg.TrainSize, cfg.H, cfg.W = 2048, 16, 16
	ds := repro.GenerateSynth(cfg)
	factory := repro.MicroAlexNetFactory(repro.MicroConfig{Classes: 8, InH: 16, Width: 8})

	const epochs = 20 // the fixed budget every run shares

	run := func(method repro.Method, batch int, warmup float64, trust float64) float64 {
		res, err := repro.Train(repro.TrainConfig{
			Model: factory, Workers: 2,
			Batch: batch, Epochs: epochs,
			Method: method, BaseLR: 0.05, BaseBatch: 32,
			WarmupEpochs: warmup, Trust: trust, Seed: 1,
		}, ds)
		if err != nil {
			log.Fatal(err)
		}
		return res.TestAcc
	}

	baseline := run(repro.BaselineSGD, 32, 0, 0)
	fmt.Printf("baseline  B=32    acc %.3f  (every run below gets the same %d epochs)\n\n", baseline, epochs)

	fmt.Printf("%-8s %-14s %-14s\n", "batch", "linear+warmup", "LARS+warmup")
	for _, b := range []int{256, 512, 1024, 2048} {
		warmup := 5.0
		trust := 0.05
		if b >= 2048 {
			warmup, trust = 12, 0.03
		}
		lin := run(repro.LinearScalingWarmup, b, warmup, 0)
		lars := run(repro.LARSWarmup, b, warmup, trust)
		marker := ""
		if lars-lin > 0.2 {
			marker = "  <- LARS rescues the large batch"
		}
		fmt.Printf("%-8d %-14.3f %-14.3f%s\n", b, lin, lars, marker)
	}
	fmt.Println("\nPaper analog: Facebook's recipe drops to 72.4%/66.0% at 32K/64K while")
	fmt.Println("LARS holds 75.4%/73.2% (Table 10); the same shape appears above.")
}
