// Asyncsgd demonstrates why the paper builds on synchronous SGD: an
// asynchronous parameter server (Downpour-style, the Background section's
// alternative) applies gradients that are ~P-1 versions stale, and with
// momentum that staleness destabilizes training at learning rates a
// synchronous run handles easily.
//
//	go run ./examples/asyncsgd
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/async"
	"repro/internal/core"
)

func main() {
	cfg := repro.DefaultSynthConfig()
	cfg.TrainSize, cfg.H, cfg.W, cfg.Classes = 512, 8, 8, 4
	ds := repro.GenerateSynth(cfg)
	mlp := repro.MicroAlexNetFactory(repro.MicroConfig{Classes: 4, InH: 8, Width: 4})

	const lr, batch = 0.2, 32
	const updates = 160 // = 10 epochs of 512 examples at batch 32

	fmt.Printf("task: %d train images, %d classes; %d updates at lr=%.2f\n\n",
		ds.Train.Len(), ds.Train.Classes, updates, lr)

	// Synchronous reference: same schedule, no staleness.
	sync, err := core.Train(core.Config{
		Model: mlp, Workers: 1, Batch: batch,
		Epochs: updates * batch / cfg.TrainSize, Method: core.BaselineSGD,
		BaseLR: lr, Seed: 2,
	}, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synchronous SGD:       acc %.3f (staleness 0)\n", sync.TestAcc)

	var reference float64
	for _, p := range []int{1, 4, 8, 16} {
		res, err := async.Train(async.Config{
			Model: mlp, Workers: p, Batch: batch, Updates: updates,
			BaseLR: lr, Momentum: 0.9, Seed: 2,
		}, ds)
		if err != nil {
			log.Fatal(err)
		}
		if p == 1 {
			// The 1-worker run is the staleness-free async reference (it
			// still differs slightly from the sync loop: with-replacement
			// sampling instead of epoch shuffling).
			reference = res.TestAcc
		}
		note := ""
		switch {
		case res.Diverged:
			note = "  DIVERGED"
		case p > 1 && res.TestAcc < reference-0.2:
			note = "  <- staleness collapse"
		}
		fmt.Printf("async, %2d workers:     acc %.3f (staleness mean %.1f, max %d)%s\n",
			p, res.TestAcc, res.MeanStaleness, res.MaxStaleness, note)
	}

	fmt.Println("\nThe paper: \"asynchronous methods using parameter server are not")
	fmt.Println("guaranteed to be stable on large-scale systems\" — hence synchronous")
	fmt.Println("SGD plus large batches (plus LARS to keep those batches trainable).")
}
