// Clustersim walks the paper's scaling story with the calibrated cluster
// simulator: from 14 days on one M40, through Facebook's 1-hour/256-GPU
// result, to the paper's 20-minute/2048-KNL run — and shows why AlexNet
// (scaling ratio 24.6) weak-scales so much worse than ResNet-50 (308).
//
//	go run ./examples/clustersim
package main

import (
	"fmt"

	"repro"
)

func main() {
	resnet := repro.ResNet50Spec()
	alexBN := repro.AlexNetBNSpec()
	const imagenet = 1280000

	fmt.Println("== The paper's ResNet-50 timeline (90 epochs of ImageNet) ==")
	steps := []struct {
		label string
		c     repro.ClusterConfig
		batch int
		paper string
	}{
		{"1x M40 (the 14-day baseline)", repro.ClusterConfig{Machine: repro.TeslaM40, Count: 1, Network: repro.KNLCluster(1).Network, Algo: repro.Ring}, 256, "14 days"},
		{"DGX-1 station (8x P100)", repro.DGX1(), 256, "21h"},
		{"Facebook: 256x P100", repro.ClusterConfig{Machine: repro.TeslaP100, Count: 256, Network: repro.DGX1().Network, Algo: repro.Ring}, 8192, "1h"},
		{"512x KNL, B=32K (LARS)", repro.KNLCluster(512), 32768, "1h"},
		{"1024x CPU, B=32K (LARS)", repro.CPUCluster(1024), 32768, "48m"},
		{"2048x KNL, B=32K (LARS)", repro.KNLCluster(2048), 32768, "20m"},
	}
	for _, s := range steps {
		est := repro.Simulate(s.c, resnet, s.batch, 90, imagenet)
		fmt.Printf("  %-32s B=%-6d sim %-9s (paper: %s)\n", s.label, s.batch, est.Duration().Round(1e9), s.paper)
	}

	fmt.Println("\n== Why the batch size must grow with the machine ==")
	for _, nodes := range []int{128, 512, 2048} {
		small := repro.Simulate(repro.KNLCluster(nodes), resnet, 2048, 90, imagenet)
		large := repro.Simulate(repro.KNLCluster(nodes), resnet, 32768, 90, imagenet)
		fmt.Printf("  %4d KNLs: B=2048 -> %-9s  B=32768 -> %-9s\n",
			nodes, small.Duration().Round(1e9), large.Duration().Round(1e9))
	}
	fmt.Println("  (at fixed small batch, extra nodes starve: 16 images per node leaves")
	fmt.Println("   the devices idle and the allreduce exposed)")

	fmt.Println("\n== AlexNet vs ResNet-50 weak scaling (512 nodes, B=32K) ==")
	a := repro.Simulate(repro.KNLCluster(512), alexBN, 32768, 100, imagenet)
	r := repro.Simulate(repro.KNLCluster(512), resnet, 32768, 90, imagenet)
	fmt.Printf("  AlexNet-BN:  comm %4.1f%% of each iteration (scaling ratio %.1f)\n",
		100*a.CommSec/(a.CompSec+a.CommSec), alexBN.ScalingRatio())
	fmt.Printf("  ResNet-50:   comm %4.1f%% of each iteration (scaling ratio %.1f)\n",
		100*r.CommSec/(r.CompSec+r.CommSec), resnet.ScalingRatio())
}
