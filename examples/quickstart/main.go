// Quickstart: train a small convnet on the synthetic ImageNet substitute
// with the paper's recipe (LARS + warmup + poly decay) at a large batch
// size, using the public repro API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. A deterministic synthetic dataset: 8 classes of 24x24 RGB images.
	cfg := repro.DefaultSynthConfig()
	cfg.TrainSize, cfg.H, cfg.W = 2048, 16, 16
	ds := repro.GenerateSynth(cfg)
	fmt.Printf("dataset: %d train / %d test images, %d classes\n",
		ds.Train.Len(), ds.Test.Len(), ds.Train.Classes)

	// 2. Train micro-AlexNet at batch 512 (a quarter of the dataset) with
	//    LARS + 5-epoch warmup across 2 data-parallel workers.
	res, err := repro.Train(repro.TrainConfig{
		Model:        repro.MicroAlexNetFactory(repro.MicroConfig{Classes: 8, InH: 16, Width: 8}),
		Workers:      2,
		Batch:        512,
		Epochs:       15,
		Method:       repro.LARSWarmup,
		BaseLR:       0.05,
		BaseBatch:    32,
		WarmupEpochs: 5,
		Trust:        0.05,
		Seed:         1,
	}, ds)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the run.
	for _, e := range res.History {
		fmt.Printf("epoch %2d: loss %.3f  test acc %.3f  lr %.3f\n",
			e.Epoch, e.TrainLoss, e.TestAcc, e.LR)
	}
	fmt.Printf("\nfinal top-1 accuracy: %.1f%% in %d iterations (%s wall)\n",
		100*res.TestAcc, res.Iterations, res.Wall.Round(1e8))
	fmt.Printf("gradient allreduce traffic: %.1f MB in %d messages\n",
		float64(res.Comm.Bytes)/1e6, res.Comm.Messages)
}
